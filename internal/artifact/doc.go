// Package artifact is a persistent, content-addressed, concurrency-safe
// on-disk cache for the expensive deterministic artifacts of the EVAL
// stack: chip variation maps (varius.ChipMaps), phase performance
// profiles (pipeline.Profile), trained fuzzy-controller sets
// (adapt.FuzzySolver), accumulated PE-fmax tables, and generated
// workload traces (workload.TraceV1). All are pure functions of
// (parameters, seed), which is the paper's own artifact lifecycle — the
// manufacturer tests a die once, profiles a phase once, trains a
// controller set once, and every later run reuses the stored result
// (§4.2-§4.3).
//
// # Key derivation
//
// An entry's key is the lowercase-hex SHA-256 of the compact JSON
// encoding of
//
//	{
//	  "schema":   1,               // key pre-image version (keySchema)
//	  "kind":     <producer name>, // "chip", "profile", "solver", ...
//	  "version":  <producer version>,
//	  "params":   <full parameter struct>,
//	  "seed":     <seed>
//	}
//
// where params is the producer's complete input configuration (for a
// solver: the varius/power/thermal/checker/limits parameters, the
// technique configuration, the training-chip seeds, and every
// TrainOptions field that affects the trained weights — Workers and Obs
// are excluded because training output is byte-identical without them).
// Struct fields marshal in declaration order, so the encoding — and the
// key — is deterministic. Any parameter change, seed change, or producer
// version bump therefore misses cleanly; there is no in-place migration
// of a stale payload, only rebuild-and-overwrite.
//
// The pre-image "schema" is keySchema, pinned at 1 forever; it is NOT
// SchemaVersion, which versions the storage layout below. Keeping the
// key function fixed across layout generations is what lets a v2 store
// recompute — and so migrate — the keys a v1 store wrote.
//
// Two kinds carry workload-trace identity (see WORKLOADS.md):
//
//   - "trace"@1 stores generated workload.TraceV1 documents keyed by
//     their generator inputs (params: the workload.Spec, seed): a warm
//     run replays the stored canonical document instead of regenerating
//     it, byte-identically either way.
//   - "profile"@2 keys include the app's TraceV1 content hash (empty
//     for the built-in proxy suite), so identically named apps from
//     different traces never alias each other's profiles, and any byte
//     change to a trace re-keys everything derived from it.
//
// # On-disk layout (store schema v2)
//
// A store directory holds numShards (8) packfile segments plus one
// index file:
//
//	pack-00.bin … pack-07.bin    append-only record segments
//	index.bin                    persistent index, atomically replaced
//
// Entries stripe across segments by the leading hex nibble of their key
// (shardOf), so concurrent synchronous writers contend on different
// stripe locks and compaction rewrites 1/8 of the store at a time.
//
// Each segment is a concatenation of framed records:
//
//	magic "EVR2" [4]
//	uvarint kindLen, kind bytes
//	raw key [32]                 (SHA-256 digest, hex-decoded)
//	uvarint payloadLen, payload bytes
//	crc32c [4, little-endian]    (covers everything above it)
//
// Records are immutable once appended; rewriting a key appends a new
// record and repoints the index, leaving the old record as garbage for
// the next compaction. CRC-32C (Castagnoli, hardware-accelerated)
// replaces v1's per-entry SHA-256 — a cache record needs corruption
// detection, not collision resistance, and the CRC is an order of
// magnitude cheaper on the warm path.
//
// The index file maps key → (segment, offset, length, atime):
//
//	magic "EVI2" [4]
//	uvarint schema (= SchemaVersion)
//	uvarint nShards, per-shard covered length
//	uvarint nKinds, length-prefixed kind strings
//	uvarint nEntries, entries: (uvarint kindRef, raw key [32],
//	    uvarint shard, offset, size, atime)
//	crc32c [4, little-endian]
//
// Entries are sorted by (kind, key), so identical stores serialize
// identically. The covered lengths record how much of each segment the
// index describes; Open scans each segment's bytes beyond them (the
// tail scan) to recover records appended after the last index save.
//
// # Payload encodings
//
// A payload is either the producer's JSON codec output (first byte '{')
// or the v2 columnar binary form (first byte BinaryTag, 0xB2, followed
// by a kind-specific format version). Payload decoders sniff the first
// byte and accept both, so producer Kind versions did not bump for the
// layout change and migrated v1 payload bytes rewrite verbatim into
// packfiles. The binary form (Enc/Dec) writes small integers as
// varints and dense float64 columns — chip grids, controller weight
// matrices, PE tables — as contiguous little-endian IEEE-754 blocks:
// bit-exact round-trips with no number formatting or parsing.
//
// # Recovery
//
// Open restores the index file when intact and otherwise rebuilds it by
// scanning every segment (artifact.cache.index_rebuilds counts this).
// Either way every segment's uncovered tail is scanned for appended
// records; a partial record at a tail (crashed writer) is truncated
// away; a segment shorter than its covered length (externally truncated
// or replaced) drops its index entries and rescans from zero; index
// entries pointing outside their segment are dropped. A crash therefore
// loses at most unflushed writes — clean misses on the next run, never
// corruption, since every read re-verifies the record checksum.
//
// # Migration from v1
//
// Version-1 stores kept one JSON envelope file per entry under
// dir/<kind>/<key[:2]>/<key>.json. A v2 store reads these through: on
// an index miss it checks the legacy path, verifies the envelope
// (schema, kind, key, payload SHA-256), counts artifact.cache.migrated,
// rewrites the payload into a packfile via the normal write path, and
// deletes the legacy file. Existing CI caches therefore migrate
// incrementally as they are hit; untouched legacy entries still count
// against MaxBytes and age out through the LRU sweep.
//
// One v1 property is narrowed: v1's atomic per-entry renames allowed
// concurrent *writing* processes on one directory. The packed layout
// assumes a single writing process at a time (in-process concurrency is
// unrestricted). Concurrent readers of a directory another process is
// writing remain safe — the index is replaced atomically and segment
// tails are re-scanned — and duplicate work across processes was always
// harmless (identical content either way).
//
// # Failure semantics
//
// The cache can never fail a run or change a result. A missing entry is
// a miss; a corrupt entry — truncation, bit flip, framing or checksum
// mismatch, or a payload its consumer cannot decode — is a *counted*
// miss (artifact.cache.corrupt) that rebuilds and supersedes the
// record. Write failures (read-only disk, ENOSPC) are counted and
// swallowed; the freshly built artifact is still returned. Loaded
// artifacts are byte-exact reproductions of what the producer built
// (both payload encodings round-trip float64 exactly), so cold, warm,
// and migrated runs of an experiment are byte-identical at a fixed
// seed.
//
// # Asynchronous persistence
//
// By default writes are decoupled from the builder: Put and GetOrBuild
// enqueue the payload on a bounded queue (writers block once
// maxQueuedWrites jobs are outstanding, so a slow disk applies
// backpressure) and return, while a single background flusher frames
// records and appends them to the segments. This overlaps cold-path
// disk I/O with the next artifact's build. The ordering contract:
//
//   - Read-your-writes: within one Store, a write is visible to reads
//     the moment Put/GetOrBuild returns — reads consult the in-memory
//     pending set before the index, so a store can never miss on (or
//     read a stale version of) its own write.
//   - Same-key FIFO, last write wins: the queue persists in write
//     order and appends repoint the index in that order, so the final
//     value of a rewritten key wins both in memory and on disk.
//   - Durability only at Flush/Close: an unflushed write exists only in
//     this process. Flush blocks until everything enqueued before it is
//     appended, then settles the store (sweep, compaction, index save);
//     Close additionally stops the flusher and closes the segment
//     handles, leaving the store usable (later writes fall back to
//     synchronous persistence). Both are idempotent and nil-safe.
//   - Cross-process visibility requires Flush: a reader process on the
//     same directory sees an entry only after the writer flushes (the
//     saved index plus tail scan covers everything appended).
//
// Options.SyncWrites restores persist-before-return for callers that
// cannot interpose a Flush before handing the directory off.
//
// # Concurrency and bounds
//
// In-process, GetOrBuild deduplicates concurrent builds of the same key
// (single-flight): one goroutine builds, the rest wait and decode the
// same bytes. Reads are pread-based and lockless against appends; a
// compaction atomically renames the rewritten segment into place and
// retires the old read descriptor, so in-flight reads finish against
// the old inode. A bounded-size LRU sweep (Options.MaxBytes) evicts the
// least-recently-used entries — across both packed records and legacy
// v1 files — once enough written bytes accumulate (and always at
// Flush/Close); hits bump an entry's atime. Eviction marks record bytes
// as garbage; compaction rewrites a segment without them when its
// garbage passes compactMinGarbage and half the segment, or whenever
// the store is over its cap. The settle pass and the disk-byte
// accounting it publishes are serialized under a dedicated mutex.
//
// # Metrics
//
// With a non-nil obs.Registry the store records artifact.cache.{hits,
// misses,corrupt,migrated,bytes,write_errors,evictions,compactions,
// index_rebuilds} counters plus per-kind variants
// (artifact.cache.<kind>.{hits,misses,corrupt,migrated}), the
// artifact.cache.{encode_ns,decode_ns} timers around record framing and
// record reads, an artifact.cache.segments gauge (live packfile count),
// and an artifact.cache.disk_bytes gauge after each settle.
package artifact
