// Package artifact is a persistent, content-addressed, concurrency-safe
// on-disk cache for the expensive deterministic artifacts of the EVAL
// stack: chip variation maps (varius.ChipMaps), phase performance
// profiles (pipeline.Profile), trained fuzzy-controller sets
// (adapt.FuzzySolver), accumulated PE-fmax tables, and generated
// workload traces (workload.TraceV1). All are pure functions of
// (parameters, seed), which is the paper's own artifact lifecycle — the
// manufacturer tests a die once, profiles a phase once, trains a
// controller set once, and every later run reuses the stored result
// (§4.2-§4.3).
//
// # Key derivation
//
// An entry's key is the lowercase-hex SHA-256 of the compact JSON
// encoding of
//
//	{
//	  "schema":   SchemaVersion,   // store file-format version
//	  "kind":     <producer name>, // "chip", "profile", "solver", ...
//	  "version":  <producer version>,
//	  "params":   <full parameter struct>,
//	  "seed":     <seed>
//	}
//
// where params is the producer's complete input configuration (for a
// solver: the varius/power/thermal/checker/limits parameters, the
// technique configuration, the training-chip seeds, and every
// TrainOptions field that affects the trained weights — Workers and Obs
// are excluded because training output is byte-identical without them).
// Struct fields marshal in declaration order, so the encoding — and the
// key — is deterministic. Any parameter change, seed change, producer
// version bump, or schema bump therefore misses cleanly; there is no
// in-place migration, only rebuild-and-overwrite.
//
// Two kinds carry workload-trace identity (see WORKLOADS.md):
//
//   - "trace"@1 stores generated workload.TraceV1 documents keyed by
//     their generator inputs (params: the workload.Spec, seed): a warm
//     run replays the stored canonical document instead of regenerating
//     it, byte-identically either way.
//   - "profile"@2 keys include the app's TraceV1 content hash (empty
//     for the built-in proxy suite), so identically named apps from
//     different traces never alias each other's profiles, and any byte
//     change to a trace re-keys everything derived from it.
//
// # On-disk layout
//
// Entries live under dir/<kind>/<key[:2]>/<key>.json as a small envelope
//
//	{"schema":1,"kind":"profile","key":"<hex>","sha256":"<hex>","payload":{...}}
//
// whose payload is the producer's existing JSON codec output and whose
// sha256 covers the payload bytes. Writes go through a temp file in the
// same directory followed by an atomic rename, so concurrent readers
// (other goroutines or other processes) see either the complete old
// entry or the complete new one, never a partial write.
//
// # Failure semantics
//
// The cache can never fail a run or change a result. A missing entry is
// a miss; a corrupt entry — truncation, bit flip, schema or key
// mismatch, checksum mismatch, or a payload its consumer cannot decode —
// is a *counted* miss (artifact.cache.corrupt) that rebuilds and
// overwrites the entry. Write failures (read-only disk, ENOSPC) are
// counted and swallowed; the freshly built artifact is still returned.
// Loaded artifacts are byte-exact reproductions of what the producer
// built (Go's JSON float encoding round-trips exactly), so cold and warm
// runs of an experiment are byte-identical at a fixed seed.
//
// # Asynchronous persistence
//
// By default writes are decoupled from the builder: Put and GetOrBuild
// seal the envelope, enqueue it on a bounded queue (writers block once
// maxQueuedWrites jobs are outstanding, so a slow disk applies
// backpressure), and return while a single background flusher performs
// the temp-file + atomic-rename persistence. This overlaps cold-path
// disk I/O with the next artifact's build. The ordering contract:
//
//   - Read-your-writes: within one Store, a write is visible to reads
//     the moment Put/GetOrBuild returns — reads consult the in-memory
//     pending set before the disk, so a store can never miss on (or read
//     a stale version of) its own write.
//   - Same-key FIFO, last write wins: the queue persists in write order,
//     and a pending entry is retired only when the flusher lands the
//     write carrying its sequence number, so the final value of a
//     rewritten key wins both in memory and on disk.
//   - Durability only at Flush/Close: an unflushed write exists only in
//     this process. Flush blocks until everything enqueued before it is
//     renamed into place; Close flushes, stops the flusher, and leaves
//     the store usable (later writes fall back to synchronous
//     persistence). Both are idempotent and nil-safe.
//   - Cross-store visibility requires Flush: another Store (or process)
//     on the same directory sees an entry only after the writer flushes.
//     The atomic rename still guarantees it sees a whole entry or none.
//
// Options.SyncWrites restores the old persist-before-return behavior for
// callers that cannot interpose a Flush before handing the directory off.
// Either way a process crash loses at most queued-but-unrenamed entries —
// pure cache misses on the next run, never corruption — and the stale
// temp files it may leave behind are swept once they age out.
//
// # Concurrency and bounds
//
// In-process, GetOrBuild deduplicates concurrent builds of the same key
// (single-flight): one goroutine builds, the rest wait and decode the
// same bytes. Across processes the atomic rename makes duplicate builds
// harmless — both write identical content. A bounded-size LRU sweep
// (Options.MaxBytes) deletes the least-recently-used entries once enough
// written bytes accumulate (and always at Flush/Close); hits bump an
// entry's mtime. The sweep and the disk-byte accounting it publishes are
// serialized under a dedicated mutex, so the flusher, Flush callers, and
// synchronous writers never interleave directory walks.
//
// # Metrics
//
// With a non-nil obs.Registry the store records artifact.cache.{hits,
// misses,corrupt,bytes,write_errors,evictions} counters plus per-kind
// variants (artifact.cache.<kind>.{hits,misses,corrupt}) and an
// artifact.cache.disk_bytes gauge after each sweep.
package artifact
