package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// readBack fetches key with Get (never building) and reports the decoded
// value, or -1 on a miss.
func readBack(t *testing.T, st *Store, key string) int {
	t.Helper()
	var p payload
	if !st.Get(testKind, key, p.decode) {
		return -1
	}
	return p.Value
}

// put writes one toy payload under key.
func put(t *testing.T, st *Store, key string, v int) {
	t.Helper()
	b, err := buildPayload(v)()
	if err != nil {
		t.Fatal(err)
	}
	st.Put(testKind, key, b)
}

// durable asserts key is visible to a brand-new store on dir — the
// packed-layout equivalent of statting a v1 entry file.
func durable(t *testing.T, dir, key string) int {
	t.Helper()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	return readBack(t, st, key)
}

// TestReadYourWrites: a store must observe its own unflushed writes (the
// pending set), while a second store on the same directory sees them only
// after Flush.
func TestReadYourWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	key, _ := Key(testKind, "ryw", 1)
	put(t, st, key, 11)
	if v := readBack(t, st, key); v != 11 {
		t.Fatalf("own unflushed write invisible: got %d", v)
	}

	st.Flush()
	other, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(other.Close)
	if v := readBack(t, other, key); v != 11 {
		t.Fatalf("flushed write invisible to second store: got %d", v)
	}
}

// TestLastWriteWins: repeated writes of one key — queued, pending, and
// persisted — must resolve to the final value both before and after Flush.
func TestLastWriteWins(t *testing.T) {
	st, _ := openTestStore(t)
	key, _ := Key(testKind, "lww", 1)
	for v := 0; v < 20; v++ {
		put(t, st, key, v)
	}
	if v := readBack(t, st, key); v != 19 {
		t.Fatalf("pending read got %d, want 19", v)
	}
	st.Flush()
	if v := readBack(t, st, key); v != 19 {
		t.Fatalf("post-flush read got %d, want 19", v)
	}
}

// TestFlushCloseIdempotentNilSafe: Flush and Close must be callable any
// number of times, in any order, on live, closed, and nil stores.
func TestFlushCloseIdempotentNilSafe(t *testing.T) {
	var nilStore *Store
	nilStore.Flush()
	nilStore.Close()

	st, _ := openTestStore(t)
	key, _ := Key(testKind, "idem", 1)
	put(t, st, key, 3)
	st.Flush()
	st.Flush()
	st.Close()
	st.Close()
	st.Flush()
	if v := readBack(t, st, key); v != 3 {
		t.Fatalf("entry lost across flush/close churn: got %d", v)
	}

	syncStore, err := Open(t.TempDir(), Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	syncStore.Flush()
	syncStore.Close()
	syncStore.Close()
}

// TestWriteAfterCloseIsSynchronous: a closed store keeps working — writes
// fall back to the synchronous path and are immediately durable.
func TestWriteAfterCloseIsSynchronous(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	key, _ := Key(testKind, "postclose", 1)
	put(t, st, key, 8)
	if v := readBack(t, st, key); v != 8 {
		t.Fatalf("post-close write unreadable: got %d", v)
	}
	if v := durable(t, dir, key); v != 8 {
		t.Fatalf("post-close write not durable: got %d", v)
	}
}

// TestSyncWritesMode: with Options.SyncWrites every write is durable the
// moment Put returns, with no Flush needed — the pre-async behavior.
func TestSyncWritesMode(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	key, _ := Key(testKind, "sync", 1)
	put(t, st, key, 5)
	if v := readBack(t, st, key); v != 5 {
		t.Fatalf("sync write unreadable: got %d", v)
	}
	if v := durable(t, dir, key); v != 5 {
		t.Fatalf("sync write not durable before Flush: got %d", v)
	}
}

// TestCloseFlushesQueue: entries still queued at Close must all reach disk
// before Close returns (a run's defer store.Close() is its durability
// point).
func TestCloseFlushesQueue(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 50; i++ {
		key, _ := Key(testKind, fmt.Sprintf("close-%d", i), 1)
		keys = append(keys, key)
		put(t, st, key, i)
	}
	st.Close()
	fresh, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fresh.Close)
	for i, key := range keys {
		if v := readBack(t, fresh, key); v != i {
			t.Fatalf("entry %d missing after Close: got %d", i, v)
		}
	}
}

// TestDiskBytesAccountingUnderConcurrency: the settle pass and the async
// flusher share the disk-byte accounting; hammering writes, flushes, and
// reads concurrently (run under -race) must leave the
// artifact.cache.disk_bytes gauge exactly equal to a fresh walk of the
// directory, and the store under its byte cap.
func TestDiskBytesAccountingUnderConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	const maxBytes = 4000
	st, err := Open(t.TempDir(), Options{MaxBytes: maxBytes, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key, _ := Key(testKind, fmt.Sprintf("acct-%d-%d", g, i%8), 1)
				put(t, st, key, i)
				if i%5 == 0 {
					st.Flush() // force settles to race the flusher's own
				}
				readBack(t, st, key)
			}
		}(g)
	}
	wg.Wait()
	st.Flush()

	var walked int64
	filepath.WalkDir(st.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, _ := d.Info()
		walked += info.Size()
		return nil
	})
	gauge := int64(reg.Gauge("artifact.cache.disk_bytes").Value())
	if gauge != walked {
		t.Fatalf("disk_bytes gauge %d != on-disk total %d", gauge, walked)
	}
	if walked > maxBytes {
		t.Fatalf("store holds %d bytes, cap %d", walked, maxBytes)
	}
}

// TestCrashDebrisRecovery: leftover temp files from a crashed settle (a
// failed index save or abandoned compaction) and v1-era temp debris must
// neither corrupt reads nor survive a settle once stale.
func TestCrashDebrisRecovery(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-2 * time.Minute)
	// Root-level debris from a crashed v2 settle.
	rootDebris := []string{
		filepath.Join(dir, ".index.tmp-crashed"),
		filepath.Join(dir, ".pack-compact-crashed"),
	}
	for _, p := range rootDebris {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Subdirectory debris from a crashed v1 writer.
	legacyDir := filepath.Join(dir, "test", "ab")
	if err := os.MkdirAll(legacyDir, 0o755); err != nil {
		t.Fatal(err)
	}
	v1Debris := filepath.Join(legacyDir, ".entry.json.tmp-crashed")
	if err := os.WriteFile(v1Debris, []byte(`{"partial":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(v1Debris, old, old); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	st, err := Open(dir, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	key, _ := Key(testKind, "debris", 1)
	put(t, st, key, 21)
	st.Flush()

	// The store works fine around the debris.
	if v := readBack(t, st, key); v != 21 {
		t.Fatalf("debris broke a clean read: got %d", v)
	}
	if c := counter(reg, "artifact.cache.corrupt"); c != 0 {
		t.Fatalf("debris counted as corruption: %d", c)
	}
	// The settle cleared the stale debris.
	for _, p := range append(rootDebris, v1Debris) {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale debris %s survived the settle: %v", p, err)
		}
	}
}
