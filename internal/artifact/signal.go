package artifact

import (
	"os"
	"os/signal"
	"syscall"
)

// FlushOnSignal installs a SIGINT/SIGTERM handler that closes the store —
// settling queued writes, saving the index, and closing the segment
// handles — before exiting with the conventional 128+signal status. Long
// cold runs queue their artifacts on the background flusher; without
// this, an interrupted run loses everything since the last settle, and
// the next cold run starts over. CLIs call it right after Resolve, so an
// interrupted -cache-dir run keeps its partial cache.
//
// The returned stop function uninstalls the handler (restoring default
// signal disposition) without closing the store; it is safe to call more
// than once. On a nil store the handler still exits on signal — the
// process behavior does not depend on whether caching is enabled.
func FlushOnSignal(s *Store) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-ch:
			s.Close() // nil-safe
			code := 128 + int(syscall.SIGTERM)
			if sig == os.Interrupt {
				code = 128 + int(syscall.SIGINT)
			}
			os.Exit(code)
		case <-done:
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		signal.Stop(ch)
		close(done)
	}
}
