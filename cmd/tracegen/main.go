// Command tracegen generates and validates TraceV1 workload traces (see
// WORKLOADS.md for the format and internal/workload for the generator).
//
// Generate a trace from a spec, then run experiments on it:
//
//	tracegen -spec examples/specs/edge.json -seed 42 -out edge.trace.json
//	evalsim -experiment fig10 -chips 4 -trace edge.trace.json
//
// Or pipe directly (the trace goes to stdout by default):
//
//	tracegen -spec examples/specs/edge.json -seed 42 | evalsim -experiment fig10 -trace -
//
// Validate checked-in specs and recorded traces (used by CI):
//
//	tracegen -validate examples/specs/edge.json edge.trace.json
//
// -validate detects each file's kind from its "format" field: trace
// documents are strictly decoded and — when they embed their generator
// spec and seed — regenerated and compared hash-for-hash; spec documents
// are decoded, validated, and smoke-lowered at seed 1.
//
// Flags:
//
//	-spec file   workload spec JSON to generate from
//	-seed n      generation seed (default 1); (spec, seed) fully
//	             determine the trace, byte for byte
//	-out file    output path (default "-" = stdout)
//	-validate    validate the positional spec/trace files instead of
//	             generating
//	-quiet       suppress the per-file/per-trace stderr notes
//
// Artifact-cache flags (see README "Artifact cache"): with -cache-dir
// (or $EVAL_CACHE_DIR) the generated trace is stored under its (spec,
// seed) key — the same entry evalsim's -workload-spec runs read — so
// generating here warms the simulator's replay path and vice versa;
// -no-cache forces the cache off. Output is byte-identical either way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	var (
		specPath = flag.String("spec", "", "workload spec JSON to generate from")
		seed     = flag.Int64("seed", 1, "generation seed")
		outPath  = flag.String("out", "-", "output path (\"-\" = stdout)")
		validate = flag.Bool("validate", false, "validate the positional spec/trace files instead of generating")
		quiet    = flag.Bool("quiet", false, "suppress stderr notes")
		cacheDir = flag.String("cache-dir", "", "persistent artifact cache directory (default off; falls back to $EVAL_CACHE_DIR)")
		noCache  = flag.Bool("no-cache", false, "disable the artifact cache even if EVAL_CACHE_DIR is set")
	)
	flag.Parse()

	store, err := artifact.Resolve(*cacheDir, *noCache, artifact.Options{})
	if err != nil {
		fatal(err)
	}
	defer store.Close()                   // settle queued cache writes; nil-safe
	defer artifact.FlushOnSignal(store)() // and keep the partial cache on ^C

	switch {
	case *validate:
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("-validate needs at least one spec or trace file"))
		}
		failed := false
		for _, path := range flag.Args() {
			if err := validateFile(path, *quiet); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: %s: %v\n", path, err)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	case *specPath != "":
		if err := generate(store, *specPath, *seed, *outPath, *quiet); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("nothing to do: pass -spec to generate or -validate files to check (see -h)"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func generate(store *artifact.Store, specPath string, seed int64, outPath string, quiet bool) error {
	data, err := os.ReadFile(specPath)
	if err != nil {
		return err
	}
	spec, err := workload.DecodeSpec(data)
	if err != nil {
		return err
	}
	enc, err := core.TraceArtifact(store, *spec, seed)
	if err != nil {
		return err
	}
	t, err := workload.DecodeTrace(enc)
	if err != nil {
		return err
	}
	if outPath == "-" {
		if _, err := os.Stdout.Write(enc); err != nil {
			return err
		}
	} else if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		return err
	}
	if !quiet {
		hash, err := t.Hash()
		if err != nil {
			return err
		}
		phases := 0
		for _, a := range t.Apps {
			phases += len(a.Phases)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s seed %d -> %d apps, %d phases, sha256 %s\n",
			spec.Name, seed, len(t.Apps), phases, hash)
	}
	return nil
}

// validateFile checks one document, detecting its kind from the "format"
// header: TraceV1 files are strictly decoded (and regenerated from their
// embedded spec+seed when present, comparing hashes); anything else must
// be a valid workload spec that lowers cleanly.
func validateFile(path string, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var header struct {
		Format string `json:"format"`
	}
	if err := json.Unmarshal(data, &header); err != nil {
		return fmt.Errorf("not a JSON document: %w", err)
	}
	if header.Format == workload.TraceFormat {
		t, err := workload.DecodeTrace(data)
		if err != nil {
			return err
		}
		note := "trace ok (no embedded spec to cross-check)"
		if t.Spec != nil && t.Generator == workload.Generator {
			regen, err := workload.Generate(*t.Spec, t.Seed)
			if err != nil {
				return fmt.Errorf("embedded spec does not regenerate: %w", err)
			}
			want, err := t.Hash()
			if err != nil {
				return err
			}
			got, err := regen.Hash()
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("trace does not match its embedded (spec, seed): recorded %s, regenerated %s", want, got)
			}
			note = fmt.Sprintf("trace ok, replays byte-identically (sha256 %s)", want)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "tracegen: %s: %s\n", path, note)
		}
		return nil
	}
	spec, err := workload.DecodeSpec(data)
	if err != nil {
		return err
	}
	apps, err := workload.GenerateApps(*spec, 1)
	if err != nil {
		return fmt.Errorf("spec does not lower: %w", err)
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "tracegen: %s: spec ok (%d clients lower to %d apps)\n",
			path, len(spec.Clients), len(apps))
	}
	return nil
}
