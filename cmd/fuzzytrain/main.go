// Command fuzzytrain runs the manufacturer-side training of §4.3.1: it
// labels random operating situations with the Exhaustive algorithm, trains
// the per-subsystem fuzzy controllers (Appendix A), measures their accuracy
// against Exhaustive (the Table 2 methodology), and can save the
// controllers to disk.
//
// By default training is per chip, as the paper prescribes (a software
// model of the specific die); -fleet trains one controller set across
// several dies instead, to study cross-chip generalization.
//
// Usage:
//
//	fuzzytrain -env TS+ASV -examples 2000
//	fuzzytrain -env TS+ASV -fleet -trainchips 4   # generalization study
//	fuzzytrain -env ALL -examples 10000 -out controllers.json
//	fuzzytrain -env TS+ASV -workers 8             # parallel training
//
// -workers fans the per-(subsystem, variant) example labeling and
// controller fits across a worker pool (0, the default, uses GOMAXPROCS).
// Trained controllers are byte-identical at every worker count.
//
// With -cache-dir (or $EVAL_CACHE_DIR) the per-chip trained controllers
// are also written into the persistent artifact cache, keyed by the full
// training fingerprint (machine config, technique config, chip seed,
// training options — see the artifact package doc). A later evalsim run
// against the same cache directory then loads them instead of retraining,
// with no extra flag plumbing: per-chip training here uses chip seeds
// seed+0..evalchips-1, the same seeds evalsim's experiments evaluate.
// -no-cache forces the cache off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/adapt"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/tech"
	"repro/internal/vats"
)

func main() {
	var (
		envName  = flag.String("env", "TS+ASV", "environment (TS, TS+ASV, TS+ASV+ABB, TS+ASV+Q, TS+ASV+Q+FU, ALL)")
		examples = flag.Int("examples", 2000, "training examples per controller (paper: 10000)")
		chips    = flag.Int("trainchips", 2, "training chips (fleet mode)")
		evals    = flag.Int("evalchips", 2, "evaluation chips")
		fleet    = flag.Bool("fleet", false, "train one controller set across trainchips dies instead of per chip")
		seed     = flag.Int64("seed", 1000, "base seed")
		out      = flag.String("out", "", "optional path to save the trained controllers (JSON)")
		workers  = flag.Int("workers", 0, "worker goroutines for training (0 = GOMAXPROCS)")
		cacheDir = flag.String("cache-dir", "", "persistent artifact cache directory (default off; falls back to $EVAL_CACHE_DIR)")
		noCache  = flag.Bool("no-cache", false, "disable the artifact cache even if EVAL_CACHE_DIR is set")
	)
	flag.Parse()

	env, err := parseEnv(*envName)
	if err != nil {
		fatal(err)
	}
	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	store, err := artifact.Resolve(*cacheDir, *noCache, artifact.Options{})
	if err != nil {
		fatal(err)
	}
	defer store.Close()                   // settle queued cache writes; nil-safe
	defer artifact.FlushOnSignal(store)() // and keep the partial cache on ^C
	sim.SetArtifacts(store)

	cfg := core.DefaultExperimentConfig()
	cfg.SeedBase = *seed
	cfg.TrainChips = *chips
	cfg.Training.Examples = *examples
	if *workers < 1 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg.Training.Workers = *workers

	var solver *adapt.FuzzySolver
	start := time.Now()
	if *fleet {
		fmt.Printf("fleet-training fuzzy controllers for %s: %d examples/controller on %d dies...\n",
			env, *examples, *chips)
		solver, err = sim.TrainSolver(env, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained %d controllers in %.1fs\n", solver.ControllerCount(), time.Since(start).Seconds())
	}

	// Accuracy against Exhaustive, Table 2 style.
	var fErr, vddErr []float64
	rng := mathx.NewRNG(*seed + 999)
	for c := 0; c < *evals; c++ {
		// Per-chip evaluation (and training) uses the same chip seeds as
		// evalsim's experiments (SeedBase+0..chips-1), so the cached
		// controllers trained here are the ones evalsim will look up.
		chipSeed := *seed + int64(c)
		chip := sim.Chip(chipSeed)
		coreView, err := sim.BuildCore(chip, env)
		if err != nil {
			fatal(err)
		}
		if !*fleet {
			fmt.Printf("training chip %d's controllers: %d examples/controller...\n", c, *examples)
			t0 := time.Now()
			solver, err = sim.TrainFuzzyCached([]*adapt.Core{coreView}, []int64{chipSeed}, cfg.Training)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-> %d controllers in %.1fs\n", solver.ControllerCount(), time.Since(t0).Seconds())
		}
		for i := 0; i < coreView.N(); i++ {
			for q := 0; q < 8; q++ {
				query := adapt.FreqQuery{
					THK:       rng.Uniform(48+273.15, 68+273.15),
					AlphaF:    rng.Uniform(0.02, 1.0),
					Variant:   vats.IdentityVariant(),
					PowerMult: 1,
				}
				query.Rho = query.AlphaF * rng.Uniform(0.8, 4.5)
				fx := coreView.FreqSolve(i, query).FMax
				ff := solver.FreqMax(coreView, i, query)
				fErr = append(fErr, math.Abs(fx-ff)*4000)
				fCore := tech.SnapFRelDown(fx * rng.Uniform(0.8, 1.0))
				pxV, _ := (adapt.Exhaustive{}).PowerLevels(coreView, i, fCore, query)
				pfV, _ := solver.PowerLevels(coreView, i, fCore, query)
				vddErr = append(vddErr, math.Abs(pxV-pfV)*1000)
			}
		}
	}
	fmt.Printf("accuracy vs Exhaustive on %d chips:\n", *evals)
	fmt.Printf("  |freq error| mean %.0f MHz (%.1f%% of nominal; paper Table 2: ~135-450 MHz)\n",
		mathx.Mean(fErr), mathx.Mean(fErr)/4000*100)
	fmt.Printf("  |Vdd  error| mean %.0f mV (paper Table 2: ~14-24 mV)\n", mathx.Mean(vddErr))

	if *out != "" {
		blob, err := json.MarshalIndent(solver, "", " ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("controllers saved to %s (%d bytes)\n", *out, len(blob))
	}
}

func parseEnv(name string) (core.Environment, error) {
	for _, e := range core.AdaptiveEnvironments() {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("unknown environment %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzytrain:", err)
	os.Exit(1)
}
