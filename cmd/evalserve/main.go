// Command evalserve exposes the fleet-scale discrete-event simulation
// service over HTTP: chips join and leave, phase changes and retuning
// requests stream in as event batches, and pure (chip, env, app, phase)
// adaptation units execute over a worker pool backed by the artifact
// cache.
//
// Usage:
//
//	evalserve -addr :8080 -workers 8 -routing least-loaded
//	evalserve -rate bulk=0.5:10,interactive=5:20 -cache-dir /tmp/evalcache
//
// Endpoints:
//
//	POST /v1/batch   body {"events":[...]}; streams one NDJSON result
//	                 line per event, in submission order
//	GET  /v1/stats   service telemetry snapshot (throughput, per-class
//	                 latency histograms, Jain fairness index)
//	GET  /healthz    liveness probe
//
// Flags:
//
//	-addr a           listen address (default :8080)
//	-workers n        worker goroutines (0 = GOMAXPROCS)
//	-routing p        unit routing policy: round-robin, least-loaded,
//	                  or affinity (by chip)
//	-max-batch n      max compatible run events coalesced per unit batch
//	-rate spec        per-class admission rates, comma-separated
//	                  class=perTick:burst entries; unlisted classes are
//	                  unthrottled
//	-examples n       fuzzy training examples per controller
//	-tracelen n       instructions per phase profile
//	-cache-dir dir    persistent artifact cache (falls back to
//	                  $EVAL_CACHE_DIR); -no-cache forces it off
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight batches, releases remaining chips (flushing their PE tables),
// and closes the artifact store before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		routing  = flag.String("routing", "round-robin", "unit routing policy: round-robin, least-loaded, affinity")
		maxBatch = flag.Int("max-batch", fleet.DefaultMaxBatch, "max compatible run events per unit batch")
		rates    = flag.String("rate", "", "per-class admission rates: class=perTick:burst[,class=...]")
		examples = flag.Int("examples", 1500, "fuzzy training examples per controller")
		traceLen = flag.Int("tracelen", pipeline.DefaultTraceLen, "instructions per phase profile")
		cacheDir = flag.String("cache-dir", "", "persistent artifact cache directory (falls back to $EVAL_CACHE_DIR)")
		noCache  = flag.Bool("no-cache", false, "disable the artifact cache even if EVAL_CACHE_DIR is set")
	)
	flag.Parse()

	pol, err := fleet.ParseRouting(*routing)
	if err != nil {
		fatal(err)
	}
	admission, err := parseRates(*rates)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	store, err := artifact.Resolve(*cacheDir, *noCache, artifact.Options{Obs: reg})
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultOptions()
	opts.TraceLen = *traceLen
	sim, err := core.NewSimulator(opts)
	if err != nil {
		fatal(err)
	}
	sim.SetObs(reg)
	sim.SetArtifacts(store)

	cfg := fleet.Config{
		Workers:   *workers,
		Routing:   pol,
		MaxBatch:  *maxBatch,
		Admission: admission,
		Obs:       reg,
	}
	cfg.Training.Examples = *examples
	fl, err := fleet.New(sim, cfg)
	if err != nil {
		fatal(err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batch", handleBatch(fl))
	mux.HandleFunc("/v1/stats", handleStats(fl))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful drain: stop accepting, finish in-flight batches, release
	// chips (flushing PE tables), then settle the artifact store.
	done := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "evalserve: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "evalserve: shutdown:", err)
		}
		fl.Close()
		store.Close() // settle queued cache writes; nil-safe
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "evalserve: listening on %s (workers=%d routing=%s)\n",
		*addr, fl.Stats().Workers, pol)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalserve:", err)
	os.Exit(1)
}

// parseRates decodes "class=perTick:burst[,class=...]" admission specs.
func parseRates(spec string) (map[string]fleet.Rate, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]fleet.Rate)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		class, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("-rate entry %q: want class=perTick:burst", entry)
		}
		pt, bs, ok := strings.Cut(val, ":")
		if !ok {
			return nil, fmt.Errorf("-rate entry %q: want class=perTick:burst", entry)
		}
		perTick, err := strconv.ParseFloat(pt, 64)
		if err != nil {
			return nil, fmt.Errorf("-rate entry %q: %v", entry, err)
		}
		burst, err := strconv.ParseFloat(bs, 64)
		if err != nil {
			return nil, fmt.Errorf("-rate entry %q: %v", entry, err)
		}
		out[class] = fleet.Rate{PerTick: perTick, Burst: burst}
	}
	return out, nil
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Events []fleet.Event `json:"events"`
}

// handleBatch ingests one event batch and streams NDJSON results in
// submission order, flushing after each line so clients see progress on
// long-running batches.
func handleBatch(fl *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req batchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		// emit runs on fleet goroutines one call at a time, but guard the
		// writer anyway: the contract is the fleet's, not the mux's.
		var mu sync.Mutex
		err := fl.SubmitBatch(req.Events, func(res fleet.Result) {
			mu.Lock()
			defer mu.Unlock()
			if err := enc.Encode(res); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		})
		if err != nil {
			// Nothing was emitted: the fleet only rejects before streaming.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	}
}

// handleStats serves the telemetry snapshot.
func handleStats(fl *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fl.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
