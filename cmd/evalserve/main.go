// Command evalserve exposes the fleet-scale discrete-event simulation
// service over HTTP: chips join and leave, phase changes and retuning
// requests stream in as event batches, and pure (chip, env, app, phase)
// adaptation units execute over a worker pool backed by the artifact
// cache.
//
// Usage:
//
//	evalserve -addr :8080 -workers 8 -routing least-loaded
//	evalserve -rate bulk=0.5:10,interactive=5:20 -cache-dir /tmp/evalcache
//
// Endpoints:
//
//	POST /v1/batch   body {"events":[...]}; streams one NDJSON result
//	                 line per event, in submission order
//	GET  /v1/stats   service telemetry snapshot (throughput, per-class
//	                 latency histograms, Jain fairness index)
//	GET  /v1/metrics obs-registry dump (counters, gauges, timers)
//	GET  /healthz    liveness probe
//
// Flags:
//
//	-addr a           listen address (default :8080)
//	-workers n        worker goroutines (0 = GOMAXPROCS)
//	-routing p        unit routing policy: round-robin, least-loaded,
//	                  or affinity (by chip)
//	-max-batch n      max compatible run events coalesced per unit batch
//	-rate spec        per-class admission rates, comma-separated
//	                  class=perTick:burst entries; unlisted classes are
//	                  unthrottled
//	-flush-bytes n    result-stream flush size watermark
//	-flush-ms d       result-stream flush latency watermark
//	-pprof a          serve net/http/pprof on this address ("" = off)
//	-examples n       fuzzy training examples per controller
//	-tracelen n       instructions per phase profile
//	-cache-dir dir    persistent artifact cache (falls back to
//	                  $EVAL_CACHE_DIR); -no-cache forces it off
//
// Results stream through a reused buffer flushed on size/time
// watermarks (-flush-bytes, -flush-ms) rather than per line: one write
// syscall covers many results, and a short timer bounds how stale a
// quiet stream can go. A disconnected client (r.Context() done) stops
// the stream; remaining results are dropped and counted in
// fleet.emit.dropped.
//
// On SIGINT/SIGTERM the server stops accepting connections, drains
// in-flight batches, releases remaining chips (flushing their PE tables),
// and closes the artifact store before exiting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		routing    = flag.String("routing", "round-robin", "unit routing policy: round-robin, least-loaded, affinity")
		maxBatch   = flag.Int("max-batch", fleet.DefaultMaxBatch, "max compatible run events per unit batch")
		rates      = flag.String("rate", "", "per-class admission rates: class=perTick:burst[,class=...]")
		flushBytes = flag.Int("flush-bytes", 64<<10, "result-stream flush size watermark")
		flushMs    = flag.Int("flush-ms", 25, "result-stream flush latency watermark (milliseconds)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		examples   = flag.Int("examples", 1500, "fuzzy training examples per controller")
		traceLen   = flag.Int("tracelen", pipeline.DefaultTraceLen, "instructions per phase profile")
		cacheDir   = flag.String("cache-dir", "", "persistent artifact cache directory (falls back to $EVAL_CACHE_DIR)")
		noCache    = flag.Bool("no-cache", false, "disable the artifact cache even if EVAL_CACHE_DIR is set")
	)
	flag.Parse()

	pol, err := fleet.ParseRouting(*routing)
	if err != nil {
		fatal(err)
	}
	admission, err := parseRates(*rates)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	store, err := artifact.Resolve(*cacheDir, *noCache, artifact.Options{Obs: reg})
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultOptions()
	opts.TraceLen = *traceLen
	sim, err := core.NewSimulator(opts)
	if err != nil {
		fatal(err)
	}
	sim.SetObs(reg)
	sim.SetArtifacts(store)

	cfg := fleet.Config{
		Workers:   *workers,
		Routing:   pol,
		MaxBatch:  *maxBatch,
		Admission: admission,
		Obs:       reg,
	}
	cfg.Training.Examples = *examples
	fl, err := fleet.New(sim, cfg)
	if err != nil {
		fatal(err)
	}

	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; give it its own
		// listener so profiling never shares the serving port.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "evalserve: pprof:", err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batch", handleBatch(fl, reg, *flushBytes, time.Duration(*flushMs)*time.Millisecond))
	mux.HandleFunc("/v1/stats", handleStats(fl))
	mux.HandleFunc("/v1/metrics", handleMetrics(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful drain: stop accepting, finish in-flight batches, release
	// chips (flushing PE tables), then settle the artifact store.
	done := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "evalserve: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "evalserve: shutdown:", err)
		}
		fl.Close()
		store.Close() // settle queued cache writes; nil-safe
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "evalserve: listening on %s (workers=%d routing=%s)\n",
		*addr, fl.Stats().Workers, pol)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalserve:", err)
	os.Exit(1)
}

// parseRates decodes "class=perTick:burst[,class=...]" admission specs.
func parseRates(spec string) (map[string]fleet.Rate, error) {
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]fleet.Rate)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		class, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("-rate entry %q: want class=perTick:burst", entry)
		}
		pt, bs, ok := strings.Cut(val, ":")
		if !ok {
			return nil, fmt.Errorf("-rate entry %q: want class=perTick:burst", entry)
		}
		perTick, err := strconv.ParseFloat(pt, 64)
		if err != nil {
			return nil, fmt.Errorf("-rate entry %q: %v", entry, err)
		}
		burst, err := strconv.ParseFloat(bs, 64)
		if err != nil {
			return nil, fmt.Errorf("-rate entry %q: %v", entry, err)
		}
		out[class] = fleet.Rate{PerTick: perTick, Burst: burst}
	}
	return out, nil
}

// batchRequest is the POST /v1/batch body.
type batchRequest struct {
	Events []fleet.Event `json:"events"`
}

// streamBufPool recycles NDJSON stream buffers across batch requests.
var streamBufPool = sync.Pool{New: func() any { return make([]byte, 0, 64<<10) }}

// resultStreamer batches NDJSON result lines through a reused buffer,
// flushing on a size watermark or a latency timer, whichever fires
// first. Once the request context is done or a write fails, it stops
// touching the connection and counts every further result as dropped.
type resultStreamer struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	flusher http.Flusher
	ctx     context.Context
	buf     []byte
	timer   *time.Timer
	failed  bool

	maxBytes int
	maxWait  time.Duration
	flushes  *obs.Counter
	dropped  *obs.Counter
}

func newResultStreamer(w http.ResponseWriter, r *http.Request, reg *obs.Registry, maxBytes int, maxWait time.Duration) *resultStreamer {
	flusher, _ := w.(http.Flusher)
	return &resultStreamer{
		w: w, flusher: flusher, ctx: r.Context(),
		buf:      streamBufPool.Get().([]byte)[:0],
		maxBytes: maxBytes, maxWait: maxWait,
		flushes: reg.Counter("fleet.emit.flushes"),
		dropped: reg.Counter("fleet.emit.dropped"),
	}
}

// emit is the fleet's result callback.
func (st *resultStreamer) emit(res fleet.Result) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed || st.ctx.Err() != nil {
		st.failed = true
		st.dropped.Inc()
		return
	}
	st.buf = res.AppendJSON(st.buf)
	st.buf = append(st.buf, '\n')
	if len(st.buf) >= st.maxBytes {
		st.flushLocked()
	} else if st.timer == nil {
		st.timer = time.AfterFunc(st.maxWait, st.timedFlush)
	}
}

func (st *resultStreamer) timedFlush() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.timer = nil
	if !st.failed && st.ctx.Err() == nil {
		st.flushLocked()
	}
}

func (st *resultStreamer) flushLocked() {
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	if len(st.buf) == 0 {
		return
	}
	if _, err := st.w.Write(st.buf); err != nil {
		st.failed = true
		st.buf = st.buf[:0]
		return
	}
	st.buf = st.buf[:0]
	if st.flusher != nil {
		st.flusher.Flush()
	}
	st.flushes.Inc()
}

// close flushes the tail and recycles the buffer. Call after
// SubmitBatch has returned (no emit can be in flight).
func (st *resultStreamer) close() {
	st.mu.Lock()
	if st.timer != nil {
		st.timer.Stop()
		st.timer = nil
	}
	if !st.failed && st.ctx.Err() == nil {
		st.flushLocked()
	}
	buf := st.buf[:0]
	st.buf = nil
	st.mu.Unlock()
	streamBufPool.Put(buf)
}

// handleBatch ingests one event batch and streams NDJSON results in
// submission order through a watermark-flushed buffer.
func handleBatch(fl *fleet.Fleet, reg *obs.Registry, flushBytes int, flushWait time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		var req batchRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		st := newResultStreamer(w, r, reg, flushBytes, flushWait)
		err := fl.SubmitBatch(req.Events, st.emit)
		st.close()
		if err != nil {
			// Nothing was emitted: the fleet only rejects before streaming.
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		}
	}
}

// handleStats serves the telemetry snapshot.
func handleStats(fl *fleet.Fleet) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fl.Stats()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// metricRow is one /v1/metrics entry.
type metricRow struct {
	Kind  string  `json:"kind"`
	Name  string  `json:"name"`
	Count int64   `json:"count,omitempty"`
	Value float64 `json:"value,omitempty"`
	SumNs int64   `json:"sum_ns,omitempty"`
	P50Ns int64   `json:"p50_ns,omitempty"`
	P95Ns int64   `json:"p95_ns,omitempty"`
	MaxNs int64   `json:"max_ns,omitempty"`
}

// handleMetrics dumps the obs registry: every counter, gauge, and timer
// the simulator, artifact store, and fleet have registered.
func handleMetrics(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rows := make([]metricRow, 0, 32)
		for _, m := range reg.Snapshot() {
			rows = append(rows, metricRow{
				Kind: m.Kind, Name: m.Name, Count: m.Count, Value: m.Value,
				SumNs: m.Sum.Nanoseconds(), P50Ns: m.P50.Nanoseconds(),
				P95Ns: m.P95.Nanoseconds(), MaxNs: m.Max.Nanoseconds(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
