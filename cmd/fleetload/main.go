// Command fleetload drives the fleet service with synthetic traffic and
// reports honest serving numbers: events/s and latency quantiles from a
// driven server, not an in-process microbenchmark.
//
// It generates a deterministic event trace (joins up front, then run
// batches across a chip/class/app matrix) and offers it either
// closed-loop (each connection submits its next batch as soon as the
// previous one finishes — throughput finds its own level) or open-loop
// (batches arrive on a fixed schedule regardless of completions — the
// coordinated-omission-free regime; overload sheds and is reported, not
// hidden).
//
// Usage:
//
//	fleetload -url http://localhost:8080 -conns 4 -duration 5s
//	fleetload -inproc -workers 8 -mode open -target-rate 20000
//	fleetload -url ... -min-events-per-sec 10000 -max-sched-p99-ms 10
//
// Backends:
//
//	-url u       drive a running evalserve over HTTP NDJSON
//	-inproc      drive an in-process fleet (no network, no server setup)
//
// Load shape:
//
//	-mode m            closed (default) or open
//	-conns n           concurrent submitters (closed) / senders (open)
//	-target-rate r     open-loop arrival rate, events/s
//	-duration d        driving time after the join phase
//	-batch n           events per submitted batch
//	-chips n           fleet size; all join up front
//	-classes list      admission classes cycled across batches
//	-run-mode m        baseline (default; pure serving-path load),
//	                   fuzzy, static, exh, or mix
//	-env e             environment for adaptive run modes
//	-seed s            trace seed
//
// Assertions (for CI smokes; violation exits non-zero):
//
//	-min-events-per-sec f   floor on measured events/s
//	-max-sched-p99-ms f     ceiling on the server's sched p99 from
//	                        /v1/stats (or the in-process snapshot)
//
// The summary is one JSON object on stdout: measured throughput,
// request-level latency quantiles, error/shed counts, and the server's
// own stats snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	var (
		url     = flag.String("url", "", "evalserve base URL (e.g. http://localhost:8080)")
		inproc  = flag.Bool("inproc", false, "drive an in-process fleet instead of HTTP")
		mode    = flag.String("mode", "closed", "load mode: closed or open")
		conns   = flag.Int("conns", 4, "concurrent submitters")
		rate    = flag.Float64("target-rate", 10000, "open-loop arrival rate, events/s")
		dur     = flag.Duration("duration", 5*time.Second, "driving time after joins")
		batchN  = flag.Int("batch", 50, "events per batch")
		chips   = flag.Int("chips", 16, "chips joined up front")
		classes = flag.String("classes", "interactive,bulk", "comma-separated admission classes")
		runMode = flag.String("run-mode", fleet.ModeBaseline, "run mode: baseline, static, fuzzy, exh, or mix")
		env     = flag.String("env", "TS+ASV+Q+FU", "environment for adaptive run modes")
		seed    = flag.Int64("seed", 1, "trace seed")

		workers  = flag.Int("workers", 0, "in-process fleet workers (0 = GOMAXPROCS)")
		routing  = flag.String("routing", "round-robin", "in-process routing policy")
		traceLen = flag.Int("tracelen", 8000, "in-process instructions per phase profile")

		minRate  = flag.Float64("min-events-per-sec", 0, "assert measured events/s >= this (0 = off)")
		maxP99Ms = flag.Float64("max-sched-p99-ms", 0, "assert server sched p99 <= this (0 = off)")
	)
	flag.Parse()

	if (*url == "") == !*inproc {
		fatal(fmt.Errorf("pick exactly one backend: -url or -inproc"))
	}
	var be backend
	var err error
	if *inproc {
		be, err = newInprocBackend(*workers, *routing, *traceLen)
	} else {
		be = &httpBackend{base: strings.TrimSuffix(*url, "/"), client: &http.Client{}}
	}
	if err != nil {
		fatal(err)
	}
	defer be.close()

	gen := newTraceGen(*seed, *chips, splitList(*classes), *runMode, *env)
	if _, _, err := be.submit(gen.joinBatch()); err != nil {
		fatal(fmt.Errorf("join phase: %w", err))
	}

	var m measured
	switch *mode {
	case "closed":
		m = driveClosed(be, gen, *conns, *batchN, *dur)
	case "open":
		m = driveOpen(be, gen, *conns, *batchN, *rate, *dur)
	default:
		fatal(fmt.Errorf("unknown -mode %q (want closed or open)", *mode))
	}

	snap, serr := be.stats()
	sum := summary{
		Mode:    *mode,
		Backend: map[bool]string{true: "inproc", false: "http"}[*inproc],
		Conns:   *conns, Batch: *batchN, Chips: *chips, RunMode: *runMode,
		DurationS:    m.elapsed.Seconds(),
		Batches:      m.batches,
		Events:       m.events,
		OK:           m.ok,
		Errors:       m.errs,
		Shed:         m.shed,
		EventsPerSec: float64(m.events) / m.elapsed.Seconds(),
		ReqP50Ms:     ms(m.req.Quantile(0.50)),
		ReqP99Ms:     ms(m.req.Quantile(0.99)),
	}
	if *mode == "open" {
		sum.TargetRate = *rate
	}
	if serr != nil {
		fmt.Fprintln(os.Stderr, "fleetload: stats fetch:", serr)
	} else {
		sum.Stats = &snap
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fatal(err)
	}

	failed := false
	if *minRate > 0 && sum.EventsPerSec < *minRate {
		fmt.Fprintf(os.Stderr, "fleetload: FAIL events/s %.0f < floor %.0f\n", sum.EventsPerSec, *minRate)
		failed = true
	}
	if *maxP99Ms > 0 {
		if sum.Stats == nil {
			fmt.Fprintln(os.Stderr, "fleetload: FAIL sched p99 assertion needs a stats snapshot")
			failed = true
		} else if sum.Stats.SchedP99Ms > *maxP99Ms {
			fmt.Fprintf(os.Stderr, "fleetload: FAIL sched p99 %.3f ms > ceiling %.3f ms\n", sum.Stats.SchedP99Ms, *maxP99Ms)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetload:", err)
	os.Exit(1)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// summary is the stdout report.
type summary struct {
	Mode       string  `json:"mode"`
	Backend    string  `json:"backend"`
	Conns      int     `json:"conns"`
	Batch      int     `json:"batch"`
	Chips      int     `json:"chips"`
	RunMode    string  `json:"run_mode"`
	TargetRate float64 `json:"target_rate,omitempty"`

	DurationS    float64 `json:"duration_s"`
	Batches      int64   `json:"batches"`
	Events       int64   `json:"events"`
	OK           int64   `json:"ok"`
	Errors       int64   `json:"errors"`
	Shed         int64   `json:"shed,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
	ReqP50Ms     float64 `json:"req_p50_ms"`
	ReqP99Ms     float64 `json:"req_p99_ms"`

	Stats *fleet.Snapshot `json:"stats,omitempty"`
}

// measured is what a drive loop observed.
type measured struct {
	elapsed time.Duration
	batches int64
	events  int64
	ok      int64
	errs    int64
	shed    int64
	req     *obs.Histogram
}

// backend submits one batch and reports (ok, error/rejected) event
// counts.
type backend interface {
	submit(events []fleet.Event) (ok, errs int, err error)
	stats() (fleet.Snapshot, error)
	close()
}

// httpBackend drives a running evalserve.
type httpBackend struct {
	base   string
	client *http.Client
}

type wireEvents struct {
	Events []fleet.Event `json:"events"`
}

func (h *httpBackend) submit(events []fleet.Event) (int, int, error) {
	body, err := json.Marshal(wireEvents{Events: events})
	if err != nil {
		return 0, 0, err
	}
	resp, err := h.client.Post(h.base+"/v1/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, 0, fmt.Errorf("POST /v1/batch: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	okN, errN := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var line struct {
		Status string `json:"status"`
	}
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return okN, errN, fmt.Errorf("bad result line: %w", err)
		}
		if line.Status == fleet.StatusOK {
			okN++
		} else {
			errN++
		}
	}
	return okN, errN, sc.Err()
}

func (h *httpBackend) stats() (fleet.Snapshot, error) {
	var snap fleet.Snapshot
	resp, err := h.client.Get(h.base + "/v1/stats")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

func (h *httpBackend) close() {}

// inprocBackend drives a fleet in this process: the scheduling and
// emission paths under load, minus the network.
type inprocBackend struct {
	fl *fleet.Fleet
}

func newInprocBackend(workers int, routing string, traceLen int) (backend, error) {
	pol, err := fleet.ParseRouting(routing)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.TraceLen = traceLen
	sim, err := core.NewSimulator(opts)
	if err != nil {
		return nil, err
	}
	fl, err := fleet.New(sim, fleet.Config{Workers: workers, Routing: pol})
	if err != nil {
		return nil, err
	}
	return &inprocBackend{fl: fl}, nil
}

func (b *inprocBackend) submit(events []fleet.Event) (int, int, error) {
	okN, errN := 0, 0
	err := b.fl.SubmitBatch(events, func(res fleet.Result) {
		if res.Status == fleet.StatusOK {
			okN++
		} else {
			errN++
		}
	})
	return okN, errN, err
}

func (b *inprocBackend) stats() (fleet.Snapshot, error) { return b.fl.Stats(), nil }

func (b *inprocBackend) close() { b.fl.Close() }

// traceGen produces the deterministic synthetic trace.
type traceGen struct {
	chips   []int64
	classes []string
	apps    []workload.App
	runMode string
	env     string
	seed    int64
	at      atomic.Int64
	n       atomic.Int64
}

func newTraceGen(seed int64, chips int, classes []string, runMode, env string) *traceGen {
	g := &traceGen{classes: classes, apps: workload.Suite(), runMode: runMode, env: env, seed: seed}
	if len(g.classes) == 0 {
		g.classes = []string{"default"}
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < chips; i++ {
		g.chips = append(g.chips, rng.Int63n(1<<20)+1)
	}
	return g
}

func (g *traceGen) joinBatch() []fleet.Event {
	evs := make([]fleet.Event, len(g.chips))
	for i, chip := range g.chips {
		evs[i] = fleet.Event{At: g.at.Add(1), Kind: fleet.KindJoin, Class: "ops", Chip: chip}
	}
	return evs
}

// runBatch derives batch k of n run events. Each event cycles the chip,
// class, app, and phase matrices at coprime-ish strides so every chip
// sees every class and the (app, phase) working set repeats quickly —
// the warm serving regime the fleet optimizes for.
func (g *traceGen) runBatch(n int) []fleet.Event {
	k := g.n.Add(1)
	evs := make([]fleet.Event, n)
	for i := range evs {
		j := int(k)*n + i
		mode := g.runMode
		if mode == "mix" {
			mode = []string{fleet.ModeBaseline, fleet.ModeFuzzy, fleet.ModeStatic}[j%3]
		}
		ev := fleet.Event{
			At:    g.at.Add(1),
			Kind:  fleet.KindRun,
			Class: g.classes[j%len(g.classes)],
			Chip:  g.chips[j%len(g.chips)],
			Mode:  mode,
		}
		if mode != fleet.ModeBaseline {
			app := g.apps[j%len(g.apps)]
			phase := (j / len(g.apps)) % len(app.Phases)
			ev.Env = g.env
			ev.App = app.Name
			ev.Phase = &phase
		}
		evs[i] = ev
	}
	return evs
}

// driveClosed runs conns submitters back-to-back for dur.
func driveClosed(be backend, gen *traceGen, conns, batchN int, dur time.Duration) measured {
	m := measured{req: &obs.Histogram{}}
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	var batches, events, okN, errN atomic.Int64
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				evs := gen.runBatch(batchN)
				sw := m.req.Start()
				ok, errs, err := be.submit(evs)
				sw.Stop()
				if err != nil {
					fmt.Fprintln(os.Stderr, "fleetload: submit:", err)
					errN.Add(int64(len(evs)))
				} else {
					okN.Add(int64(ok))
					errN.Add(int64(errs))
				}
				batches.Add(1)
				events.Add(int64(len(evs)))
			}
		}()
	}
	wg.Wait()
	m.elapsed = time.Since(start)
	m.batches, m.events, m.ok, m.errs = batches.Load(), events.Load(), okN.Load(), errN.Load()
	return m
}

// driveOpen schedules batches at the target arrival rate; conns senders
// drain the schedule. Arrivals that find every sender busy and the
// queue full are shed and counted — open-loop overload is reported, not
// absorbed into the arrival schedule.
func driveOpen(be backend, gen *traceGen, conns, batchN int, rate float64, dur time.Duration) measured {
	m := measured{req: &obs.Histogram{}}
	interval := time.Duration(float64(batchN) / rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	jobs := make(chan []fleet.Event, 2*conns)
	var wg sync.WaitGroup
	var batches, events, okN, errN, shed atomic.Int64
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for evs := range jobs {
				sw := m.req.Start()
				ok, errs, err := be.submit(evs)
				sw.Stop()
				if err != nil {
					fmt.Fprintln(os.Stderr, "fleetload: submit:", err)
					errN.Add(int64(len(evs)))
				} else {
					okN.Add(int64(ok))
					errN.Add(int64(errs))
				}
				batches.Add(1)
				events.Add(int64(len(evs)))
			}
		}()
	}
	start := time.Now()
	deadline := start.Add(dur)
	tick := time.NewTicker(interval)
	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		select {
		case jobs <- gen.runBatch(batchN):
		default:
			shed.Add(int64(batchN))
		}
	}
	tick.Stop()
	close(jobs)
	wg.Wait()
	m.elapsed = time.Since(start)
	m.batches, m.events, m.ok, m.errs, m.shed = batches.Load(), events.Load(), okN.Load(), errN.Load(), shed.Load()
	return m
}
