// Command chipgen generates the personalized variation maps of one or more
// chips (§2.1) and reports what the manufacturer's tester would see: the
// per-subsystem effective threshold voltages, each subsystem's error-free
// frequency at the design corner, and the chip's worst-case-safe frequency
// (the Baseline clock).
//
// Usage:
//
//	chipgen -seed 3            # one chip in detail
//	chipgen -n 100             # frequency binning across 100 chips
//	chipgen -seed 3 -curves    # per-subsystem PE(f) samples as CSV
//	chipgen -seed 3 -save c.json   # persist a die's tester database
//	chipgen -load c.json           # inspect a persisted die
//
// With -cache-dir (or $EVAL_CACHE_DIR) generated chips are persisted in
// the content-addressed artifact cache keyed by (varius params, seed), so
// later chipgen/evalsim/fuzzytrain runs load the same die instead of
// re-sampling it; -no-cache forces the cache off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/varius"
	"repro/internal/vats"
)

func main() {
	var (
		seed   = flag.Int64("seed", 3, "chip seed")
		n      = flag.Int("n", 0, "bin n chips instead of detailing one")
		curves = flag.Bool("curves", false, "emit per-subsystem PE(f) CSV for the chip")
		save   = flag.String("save", "", "write the chip's variation maps to a JSON file")
		load   = flag.String("load", "", "inspect a previously saved chip instead of generating one")

		cacheDir = flag.String("cache-dir", "", "persistent artifact cache directory (default off; falls back to $EVAL_CACHE_DIR)")
		noCache  = flag.Bool("no-cache", false, "disable the artifact cache even if EVAL_CACHE_DIR is set")
	)
	flag.Parse()

	sim, err := core.NewSimulator(core.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	store, err := artifact.Resolve(*cacheDir, *noCache, artifact.Options{})
	if err != nil {
		fatal(err)
	}
	defer store.Close()                   // settle queued cache writes; nil-safe
	defer artifact.FlushOnSignal(store)() // and keep the partial cache on ^C
	sim.SetArtifacts(store)
	if *n > 0 {
		if err := binChips(sim, *n); err != nil {
			fatal(err)
		}
		return
	}
	var chip *varius.ChipMaps
	if *load != "" {
		blob, err := os.ReadFile(*load)
		if err != nil {
			fatal(err)
		}
		chip = &varius.ChipMaps{}
		if err := json.Unmarshal(blob, chip); err != nil {
			fatal(err)
		}
	} else {
		chip = sim.Chip(*seed)
	}
	if *save != "" {
		blob, err := json.Marshal(chip)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*save, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("chip saved to %s (%d bytes)\n", *save, len(blob))
	}
	if err := detailChip(sim, chip, *curves); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chipgen:", err)
	os.Exit(1)
}

func detailChip(sim *core.Simulator, chip *varius.ChipMaps, curves bool) error {
	vp := sim.Options().Varius
	corner := vats.Cond{VddV: vp.VddNomV, TK: vp.TOpRefK}
	pl, err := vats.NewPipeline(sim.Floorplan(), chip, vp)
	if err != nil {
		return err
	}
	fmt.Printf("chip seed %d (Vt: mu=%.0f mV sigma/mu=%.2f, phi=%.2f)\n",
		chip.Seed, vp.VtMeanV*1000, vp.VtSigmaRatio, vp.Phi)
	fmt.Printf("%-12s %-7s %10s %10s %10s\n", "subsystem", "kind", "Vt0eff(mV)", "Vt0max(mV)", "fvar")
	minF := 2.0
	for _, st := range pl.Stages {
		sub := st.Sub
		_, vtMax, leakEff := chip.RegionVtStats(sub.Rect, vp)
		fv := st.Eval(corner, vats.IdentityVariant()).FVar()
		if fv < minF {
			minF = fv
		}
		fmt.Printf("%-12s %-7s %10.1f %10.1f %10.3f\n",
			sub.ID, sub.Kind, leakEff*1000, vtMax*1000, fv)
	}
	fmt.Printf("\nworst-case-safe frequency (Baseline clock): %.3f x nominal (%.2f GHz)\n",
		minF, minF*4.0)
	if !curves {
		return nil
	}
	fmt.Println("\nfrel,subsystem,pe")
	for _, st := range pl.Stages {
		cv := st.Eval(corner, vats.IdentityVariant())
		for _, p := range vats.SampleCurve(cv, 0.7, 1.4, 36) {
			fmt.Printf("%.3f,%s,%.4g\n", p.FRel, st.Sub.ID, p.PE)
		}
	}
	return nil
}

func binChips(sim *core.Simulator, n int) error {
	fvars := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		fv, err := sim.ChipFVar(sim.Chip(int64(i)))
		if err != nil {
			return err
		}
		fvars = append(fvars, fv)
	}
	sort.Float64s(fvars)
	s, err := mathx.Summarize(fvars)
	if err != nil {
		return err
	}
	fmt.Printf("worst-case-safe frequency across %d chips (relative to nominal):\n", n)
	fmt.Printf("  mean %.3f  sd %.3f  min %.3f  p5 %.3f  median %.3f  p95 %.3f  max %.3f\n",
		s.Mean, s.StdDev, s.Min, s.P5, s.Median, s.P95, s.Max)
	fmt.Printf("  (the paper's Baseline runs at 78%% of nominal on average)\n")
	// A simple bin histogram.
	const bins = 10
	lo, hi := s.Min, s.Max
	if hi <= lo {
		return nil
	}
	counts := make([]int, bins)
	for _, f := range fvars {
		b := int(float64(bins) * (f - lo) / (hi - lo))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	for b := 0; b < bins; b++ {
		left := lo + float64(b)*(hi-lo)/bins
		fmt.Printf("  %.3f ", left)
		for i := 0; i < counts[b]; i++ {
			fmt.Print("#")
		}
		fmt.Println()
	}
	return nil
}
