// Command evalsim runs the EVAL evaluation experiments and prints the rows
// and series of the paper's tables and figures.
//
// Usage:
//
//	evalsim -experiment fig10 -chips 20 -apps gcc,swim,mcf
//	evalsim -experiment fig8 -chip 3 -app swim
//	evalsim -experiment table2 -chips 4 -examples 2000 -trainchips 3
//	evalsim -experiment summary -chips 8 -modes static,exh -tracelen 40000
//	evalsim -experiment summary -chips 2 -metrics -progress
//	evalsim -experiment areas
//
// Experiments: fig1, fig2, fig4, fig8, fig9, fig10, fig11, fig12, fig13,
// table2, areas, summary (fig10+fig11+fig12 in one run), retime (the §7
// dynamic-retiming baseline comparison), schemes (Diva vs Razor vs
// Paceline error tolerance), cmp (4-core die binning: slowest-core clock
// vs per-core EVAL adaptation), ablate (sensitivity of the headline
// quantities to the model's design choices).
//
// Experiment flags:
//
//	-experiment name  which table/figure to regenerate (default summary)
//	-chips n          number of evaluation chips (paper: 100)
//	-seed n           base seed for chip generation
//	-apps a,b,c       app subset (default: the full 26-app suite)
//	-chip n, -app s   chip seed / application for the single-chip figures
//	                  (fig1, fig2, fig4, fig8, fig9)
//	-modes m,m        adaptation modes for fig10-12/summary, any of
//	                  static, fuzzy, exh (default all three)
//	-trainchips n     distinct chips for fleet-style fuzzy training
//	                  (TrainSolver; the summary experiments train per chip)
//	-examples n       fuzzy training examples per controller (paper: 10000)
//	-tracelen n       instructions per phase profile (trace length)
//	-workers n        worker goroutines for the chip×env / config×chip /
//	                  env×chip work queues of summary, fig10-13, and
//	                  table2 (0 = GOMAXPROCS); results are byte-identical
//	                  at every worker count
//
// Workload flags (summary, fig10-13, table2; see WORKLOADS.md):
//
//	-workload-spec f  generate the application set from a workload spec
//	                  JSON instead of the proxy suite; mutually exclusive
//	                  with -apps and -trace
//	-workload-seed n  generation seed for -workload-spec (default 1);
//	                  (spec, seed) fully determine the workload
//	-trace f          replay a recorded TraceV1 trace file ("-" = stdin),
//	                  e.g. one emitted by tracegen; rows are identical to
//	                  the live-generated run of the same (spec, seed)
//
// Artifact-cache flags (see README "Artifact cache"):
//
//	-cache-dir dir    persistent content-addressed cache of chips, phase
//	                  profiles, trained fuzzy solvers, PE tables,
//	                  generated traces, static operating points, and
//	                  per-app adaptation results; repeated runs load
//	                  instead of rebuild. Default off; an empty flag
//	                  falls back to $EVAL_CACHE_DIR. Results are
//	                  byte-identical with or without the cache.
//	-no-cache         force the cache off even if EVAL_CACHE_DIR is set
//
// Observability flags (any experiment; see README "Observability &
// profiling"):
//
//	-progress         live per-worker status line on stderr
//	-metrics          print a metrics footer (stage timers, controller
//	                  outcome counters, worker occupancy) at exit
//	-cpuprofile file  write a pprof CPU profile of the run
//	-memprofile file  write a pprof heap profile at exit
//	-trace-out file   write a Chrome trace-event JSON of the nested
//	                  chip → env → mode → app spans
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"repro/internal/adapt"
	"repro/internal/artifact"
	cmppkg "repro/internal/cmp"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/tech"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "summary", "which table/figure to regenerate")
		chips      = flag.Int("chips", 8, "number of evaluation chips (paper: 100)")
		seed       = flag.Int64("seed", 1000, "base seed for chip generation")
		apps       = flag.String("apps", "", "comma-separated app subset (default: full 26-app suite)")
		chip       = flag.Int64("chip", 3, "chip seed for single-chip figures (fig1/fig2/fig8/fig9)")
		app        = flag.String("app", "swim", "application for single-chip figures")
		examples   = flag.Int("examples", 1500, "fuzzy training examples per controller (paper: 10000)")
		trainChips = flag.Int("trainchips", 2, "chips used for fuzzy training")
		traceLen   = flag.Int("tracelen", pipeline.DefaultTraceLen, "instructions per phase profile")
		modes      = flag.String("modes", "static,fuzzy,exh", "adaptation modes for fig10-12")
		wlSpec     = flag.String("workload-spec", "", "workload spec JSON to generate the app set from (see WORKLOADS.md)")
		wlSeed     = flag.Int64("workload-seed", 1, "generation seed for -workload-spec")
		tracePath  = flag.String("trace", "", "TraceV1 trace file to replay (\"-\" = stdin)")
		workers    = flag.Int("workers", 0, "worker goroutines for the experiment work queues (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", "", "persistent artifact cache directory (default off; falls back to $EVAL_CACHE_DIR)")
		noCache    = flag.Bool("no-cache", false, "disable the artifact cache even if EVAL_CACHE_DIR is set")
		progress   = flag.Bool("progress", false, "render live per-worker progress to stderr")
		metrics    = flag.Bool("metrics", false, "print a metrics footer (timers, counters, occupancy) at exit")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of chip/app spans to this file")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	store, err := artifact.Resolve(*cacheDir, *noCache, artifact.Options{Obs: reg})
	if err != nil {
		fatal(err)
	}
	defer store.Close()                   // settle queued cache writes; nil-safe
	defer artifact.FlushOnSignal(store)() // and keep the partial cache on ^C
	// instrument attaches the run's observability sinks and the artifact
	// store to a simulator; every simulator the experiments construct goes
	// through it.
	instrument := func(s *core.Simulator) *core.Simulator {
		s.SetObs(reg)
		s.SetTracer(tracer)
		s.SetArtifacts(store)
		if *progress {
			s.SetProgressWriter(os.Stderr)
		}
		return s
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := core.DefaultOptions()
	opts.TraceLen = *traceLen
	sim, err := core.NewSimulator(opts)
	if err != nil {
		fatal(err)
	}
	instrument(sim)
	cfg := core.DefaultExperimentConfig()
	cfg.Chips = *chips
	cfg.SeedBase = *seed
	cfg.TrainChips = *trainChips
	cfg.Training.Examples = *examples
	cfg.Workers = *workers
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}
	if cfg.Workloads, err = resolveWorkloads(sim, *wlSpec, *wlSeed, *tracePath, *apps); err != nil {
		fatal(err)
	}
	if cfg.Modes, err = parseModes(*modes); err != nil {
		fatal(err)
	}

	expSW := reg.Timer("evalsim.experiment").Start()
	switch *experiment {
	case "fig1":
		err = runFig1(sim, *chip)
	case "fig2":
		err = runFig2(sim, *chip, *app)
	case "fig4":
		err = runFig4(sim, *chip, *app)
	case "fig8":
		err = runFig8(sim, *chip, *app)
	case "fig9":
		err = runFig9(sim, *chip, *app)
	case "fig10", "fig11", "fig12", "summary":
		err = runSummary(sim, cfg, *experiment)
	case "fig13":
		err = runFig13(sim, cfg)
	case "table2":
		err = runTable2(sim, cfg)
	case "areas":
		err = runAreas()
	case "retime":
		err = runRetime(sim, *chips, *seed)
	case "schemes":
		err = runSchemes(cfg, *traceLen)
	case "cmp":
		err = runCMP(*chips, *seed, instrument)
	case "ablate":
		err = runAblate(sim, *chips, *seed, instrument)
	default:
		err = fmt.Errorf("unknown experiment %q", *experiment)
	}
	expSW.Stop()
	if err != nil {
		fatal(err)
	}
	if *memprofile != "" {
		f, ferr := os.Create(*memprofile)
		if ferr != nil {
			fatal(ferr)
		}
		runtime.GC() // flush garbage so the heap profile shows live data
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal(cerr)
		}
	}
	if tracer != nil {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatal(ferr)
		}
		if werr := tracer.WriteChromeTrace(f); werr != nil {
			fatal(werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal(cerr)
		}
		fmt.Fprintf(os.Stderr, "evalsim: wrote %d spans to %s\n", tracer.Len(), *traceOut)
	}
	if reg != nil {
		fmt.Println()
		if werr := reg.WriteSummary(os.Stdout); werr != nil {
			fatal(werr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalsim:", err)
	os.Exit(1)
}

// resolveWorkloads loads the generated or replayed application set when
// -workload-spec or -trace is given (nil otherwise: the proxy suite or
// -apps subset applies). Both paths lower through workload.TraceV1, so a
// replayed trace yields rows identical to the live-generated run of the
// same (spec, seed).
func resolveWorkloads(sim *core.Simulator, specPath string, specSeed int64, tracePath, apps string) ([]workload.App, error) {
	if specPath == "" && tracePath == "" {
		return nil, nil
	}
	if specPath != "" && tracePath != "" {
		return nil, fmt.Errorf("-workload-spec and -trace are mutually exclusive")
	}
	if apps != "" {
		return nil, fmt.Errorf("-apps cannot be combined with -workload-spec or -trace")
	}
	if specPath != "" {
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		spec, err := workload.DecodeSpec(data)
		if err != nil {
			return nil, err
		}
		return sim.GeneratedApps(*spec, specSeed)
	}
	var data []byte
	var err error
	if tracePath == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(tracePath)
	}
	if err != nil {
		return nil, err
	}
	t, err := workload.DecodeTrace(data)
	if err != nil {
		return nil, err
	}
	return t.Lower()
}

func parseModes(s string) ([]core.Mode, error) {
	var out []core.Mode
	for _, m := range strings.Split(s, ",") {
		switch strings.TrimSpace(m) {
		case "static":
			out = append(out, core.Static)
		case "fuzzy":
			out = append(out, core.FuzzyDyn)
		case "exh":
			out = append(out, core.ExhDyn)
		default:
			return nil, fmt.Errorf("unknown mode %q in -modes (want static, fuzzy, exh)", strings.TrimSpace(m))
		}
	}
	return out, nil
}

func runSummary(sim *core.Simulator, cfg core.ExperimentConfig, which string) error {
	sum, err := sim.RunSummary(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# %d chips x %d apps; values relative to NoVar\n", sum.Chips, len(sum.Apps))
	fmt.Printf("Baseline: fRel=%.3f perfR=%.3f power=%.1fW (paper: 0.78 / ~0.7 / ~17W)\n",
		sum.BaselineFRel, sum.BaselinePerfR, sum.BaselinePowerW)
	fmt.Printf("NoVar:    fRel=1.000 perfR=1.000 power=%.1fW (paper: ~25W)\n\n", sum.NoVarPowerW)
	if which == "fig10" || which == "summary" {
		printCells("Figure 10: relative frequency", sum, func(c core.Cell) float64 { return c.FRel })
	}
	if which == "fig11" || which == "summary" {
		printCells("Figure 11: relative performance", sum, func(c core.Cell) float64 { return c.PerfR })
	}
	if which == "fig12" || which == "summary" {
		printCells("Figure 12: power per processor (W)", sum, func(c core.Cell) float64 { return c.PowerW })
	}
	return nil
}

func printCells(title string, sum *core.Summary, metric func(core.Cell) float64) {
	fmt.Println(title)
	modes := []core.Mode{}
	seen := map[core.Mode]bool{}
	for _, c := range sum.Cells {
		if !seen[c.Mode] {
			seen[c.Mode] = true
			modes = append(modes, c.Mode)
		}
	}
	sort.Slice(modes, func(i, j int) bool { return modes[i] < modes[j] })
	fmt.Printf("%-14s", "")
	for _, m := range modes {
		fmt.Printf("%12s", m)
	}
	fmt.Println()
	for _, env := range core.AdaptiveEnvironments() {
		row := make([]string, 0, len(modes))
		found := false
		for _, m := range modes {
			if c, err := sum.CellFor(env, m); err == nil {
				row = append(row, fmt.Sprintf("%12.3f", metric(c)))
				found = true
			} else {
				row = append(row, fmt.Sprintf("%12s", "-"))
			}
		}
		if found {
			fmt.Printf("%-14s%s\n", env, strings.Join(row, ""))
		}
	}
	fmt.Println()
}

func runFig13(sim *core.Simulator, cfg core.ExperimentConfig) error {
	cells, err := sim.RunOutcomes(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 13: outcomes of the fuzzy controller system (%)")
	fmt.Printf("%-26s%10s%10s%10s%10s%10s\n", "config", "NoChange", "LowFreq", "Error", "Temp", "Power")
	for _, c := range cells {
		fmt.Printf("%-26s", c.Label)
		for o := 0; o < int(adapt.NumOutcomes); o++ {
			fmt.Printf("%10.1f", c.Fractions[o]*100)
		}
		fmt.Println()
	}
	return nil
}

func runTable2(sim *core.Simulator, cfg core.ExperimentConfig) error {
	rows, err := sim.RunTable2(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 2: |fuzzy - exhaustive| (absolute, and % of nominal)")
	fmt.Printf("%-12s%-12s%16s%16s%16s\n", "param", "env", "memory", "mixed", "logic")
	kinds := []floorplan.Kind{floorplan.Memory, floorplan.Mixed, floorplan.Logic}
	for _, r := range rows {
		fmt.Printf("%-12s%-12s", r.Param, r.Env)
		for _, k := range kinds {
			if pct, ok := r.PctErr[k]; ok {
				fmt.Printf("%9.0f (%3.1f%%)", r.AbsErr[k], pct)
			} else {
				fmt.Printf("%10.0f (  - )", r.AbsErr[k])
			}
		}
		fmt.Println()
	}
	return nil
}

func runAreas() error {
	fmt.Println("Figure 7(d): area overhead of the EVAL additions")
	for _, o := range floorplan.AreaOverheads() {
		fmt.Printf("  %-16s %5.1f%% of processor area\n", o.Source, o.Percent)
	}
	fmt.Printf("  %-16s %5.1f%% (paper: 10.6%%)\n", "Total", floorplan.TotalAreaOverheadPercent())
	return nil
}

func runFig1(sim *core.Simulator, chip int64) error {
	res, err := sim.Figure1(chip)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 1(a,b): dynamic path-delay densities (delay in nominal periods)")
	fmt.Println("delay,density_novar,density_var")
	for i := range res.DelayNoVar {
		fmt.Printf("%.3f,%.4g,%.4g\n", res.DelayNoVar[i].FRel, res.DelayNoVar[i].Y, res.DelayVar[i].Y)
	}
	fmt.Println("\n# Figure 1(c,d): stage and pipeline error rates")
	fmt.Println("frel,stage_pe,pipeline_pe")
	for i := range res.StagePE {
		fmt.Printf("%.3f,%.4g,%.4g\n", res.StagePE[i].FRel, res.StagePE[i].Y, res.PipelinePE[i].Y)
	}
	return nil
}

func runFig2(sim *core.Simulator, chip int64, app string) error {
	res, err := sim.Figure2(chip, app)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 2(a): Perf(f) and PE(f) under timing speculation")
	fmt.Println("frel,perf,pe")
	for i := range res.Perf {
		fmt.Printf("%.3f,%.4g,%.4g\n", res.Perf[i].FRel, res.Perf[i].Y, res.PE[i].Y)
	}
	fmt.Println("\n# Figure 2(b): tilt (FU replica)  (c): shift (queue resize)  (d): reshape (ASV)")
	fmt.Println("frel,tilt_before,tilt_after,shift_before,shift_after,reshape_before,reshape_after")
	for i := range res.TiltBefore {
		fmt.Printf("%.3f,%.4g,%.4g,%.4g,%.4g,%.4g,%.4g\n",
			res.TiltBefore[i].FRel, res.TiltBefore[i].Y, res.TiltAfter[i].Y,
			res.ShiftBefore[i].Y, res.ShiftAfter[i].Y,
			res.ReshapeBefore[i].Y, res.ReshapeAfter[i].Y)
	}
	return nil
}

func runFig4(sim *core.Simulator, chipSeed int64, appName string) error {
	app, err := workload.ByName(appName)
	if err != nil {
		return err
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		return err
	}
	c, err := sim.BuildCore(sim.Chip(chipSeed), core.TSASVQFU)
	if err != nil {
		return err
	}
	th := 60 + 273.15
	fuID := floorplan.IntALU
	if app.Class == workload.FP {
		fuID = floorplan.FPUnit
	}
	var fuIdx int
	for i := range c.Subs {
		if c.Subs[i].Sub.ID == fuID {
			fuIdx = i
		}
	}
	fNormal := c.FreqSolve(fuIdx, c.QueryFor(fuIdx, prof, th, tech.QueueFull, tech.FUNormal)).FMax
	fLow := c.FreqSolve(fuIdx, c.QueryFor(fuIdx, prof, th, tech.QueueFull, tech.FULowSlope)).FMax
	minRest := 99.0
	for i := range c.Subs {
		if i == fuIdx {
			continue
		}
		if f := c.FreqSolve(i, c.QueryFor(i, prof, th, tech.QueueFull, tech.FUNormal)).FMax; f < minRest {
			minRest = f
		}
	}
	fmt.Println("Figure 4: FU-replica enable decision")
	fmt.Printf("  f_normal   = %.3f\n  f_lowslope = %.3f\n  Min(f)rest = %.3f\n", fNormal, fLow, minRest)
	switch {
	case fNormal < minRest && fLow > fNormal:
		fmt.Println("  -> case (i)/(ii): FU is critical; enable LowSlope to maximize frequency")
	case fNormal < minRest:
		fmt.Println("  -> FU is critical but LowSlope does not help; keep Normal")
	default:
		fmt.Println("  -> case (iii): FU is not critical; enable Normal to save power")
	}
	return nil
}

func runFig8(sim *core.Simulator, chip int64, app string) error {
	for _, reshaped := range []bool{false, true} {
		res, err := sim.Figure8(chip, app, reshaped)
		if err != nil {
			return err
		}
		label := "TS"
		if reshaped {
			label = "TS+ASV+ABB"
		}
		fmt.Printf("# Figure 8 under %s: app=%s chip=%d; peak perfR=%.3f at fR=%.3f\n",
			label, res.App, res.ChipSeed, res.PeakPerf, res.PeakF)
		fmt.Print("frel,perfR")
		for _, ser := range res.Subsystem {
			fmt.Printf(",%s(%s)", ser.ID, ser.Kind)
		}
		fmt.Println()
		for i, p := range res.Perf {
			fmt.Printf("%.3f,%.4f", p.FRel, p.Y)
			for _, ser := range res.Subsystem {
				fmt.Printf(",%.4g", ser.Points[i].Y)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	return nil
}

func runFig9(sim *core.Simulator, chip int64, app string) error {
	pts, err := sim.Figure9(chip, app)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 9: IntALU power x frequency -> (min PE, processor perfR)")
	fmt.Println("power_w,frel,pe,perfR")
	for _, p := range pts {
		fmt.Printf("%.2f,%.3f,%.4g,%.4f\n", p.PowerW, p.FRel, p.PE, p.PerfR)
	}
	return nil
}

// runRetime reproduces the §7 comparison: worst-case clocking vs dynamic
// retiming (ReCycle-style slack redistribution) vs EVAL's preferred
// environment, averaged over chips.
func runRetime(sim *core.Simulator, chips int, seed int64) error {
	cmp, err := sim.RunRetimeComparison(chips, seed, "gcc")
	if err != nil {
		return err
	}
	fmt.Printf("frequency relative to nominal, mean over %d chips (%s):\n", cmp.Chips, cmp.App)
	fmt.Printf("  worst-case clocking (Baseline)  %.3f\n", cmp.BaselineFRel)
	fmt.Printf("  dynamic retiming (ReCycle-like) %.3f  (+%.0f%%; paper: +10-20%%)\n",
		cmp.RetimedFRel, (cmp.RetimeGain()-1)*100)
	fmt.Printf("  EVAL preferred environment      %.3f  (+%.0f%%; paper: +56%%)\n",
		cmp.EVALFRel, (cmp.EVALGain()-1)*100)
	return nil
}

// runSchemes compares the error-tolerance architectures of §3.1: the same
// EVAL adaptation on top of a Diva checker, Razor-style stage checking, or
// a Paceline-style checker core.
func runSchemes(cfg core.ExperimentConfig, traceLen int) error {
	rows, err := core.RunSchemeComparison(cfg.Chips, cfg.SeedBase, "gcc", traceLen)
	if err != nil {
		return err
	}
	tb := report.NewTable("EVAL (TS+ASV, Exh-Dyn) on top of each error-tolerance scheme (gcc):",
		"scheme", "fRel", "perf", "power(W)", "PE")
	for _, r := range rows {
		tb.AddRow(r.Scheme.String(),
			fmt.Sprintf("%.3f", r.FRel), fmt.Sprintf("%.3f", r.Perf),
			fmt.Sprintf("%.1f", r.PowerW), fmt.Sprintf("%.2e", r.PE))
	}
	return tb.WriteText(os.Stdout)
}

// runCMP reproduces the §5 platform view: each die carries four cores that
// share one variation map. Without EVAL the die ships at its slowest
// core's safe frequency; with per-core adaptation every core runs at its
// own pace.
func runCMP(chips int, seed int64, instrument func(*core.Simulator) *core.Simulator) error {
	opts := core.DefaultOptions()
	gen, err := cmppkg.NewGenerator(opts.Varius)
	if err != nil {
		return err
	}
	sim, err := core.NewSimulator(opts)
	if err != nil {
		return err
	}
	instrument(sim)
	app, err := workload.ByName("gcc")
	if err != nil {
		return err
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		return err
	}
	vp := gen.Params()
	fmt.Printf("%-5s %28s %12s %14s\n", "die", "per-core fvar", "die clock", "EVAL per-core")
	var dieClock, evalMean []float64
	for d := 0; d < chips; d++ {
		die, err := gen.Chip(seed + int64(d))
		if err != nil {
			return err
		}
		var fvars, adapted []float64
		for c := 0; c < cmppkg.NumCores; c++ {
			fv, err := die.CoreFVar(c, vp)
			if err != nil {
				return err
			}
			fvars = append(fvars, fv)
			cpu, err := die.BuildCore(c, vp, core.TSASVQFU.Config(), opts.Checker, opts.Limits)
			if err != nil {
				return err
			}
			res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
			if err != nil {
				return err
			}
			adapted = append(adapted, res.Point.FCore)
		}
		fmt.Printf("%-5d %5.3f %5.3f %5.3f %5.3f %12.3f %14.3f\n",
			d, fvars[0], fvars[1], fvars[2], fvars[3], mathx.Min(fvars), mathx.Mean(adapted))
		dieClock = append(dieClock, mathx.Min(fvars))
		evalMean = append(evalMean, mathx.Mean(adapted))
	}
	fmt.Printf("\nmean die clock (slowest core, no EVAL): %.3f x nominal\n", mathx.Mean(dieClock))
	fmt.Printf("mean per-core EVAL frequency:           %.3f x nominal (+%.0f%%)\n",
		mathx.Mean(evalMean), (mathx.Mean(evalMean)/mathx.Mean(dieClock)-1)*100)
	return nil
}

// runAblate sweeps the model's design choices and reports their effect on
// the worst-case-safe frequency and the per-subsystem ASV value.
func runAblate(sim *core.Simulator, chips int, seed int64, instrument func(*core.Simulator) *core.Simulator) error {
	// Correlation range phi.
	tb := report.NewTable("ablation: correlation range phi -> fvar across chips",
		"phi", "fvar mean", "fvar sd")
	for _, phi := range []float64{0.1, 0.3, 0.5, 0.9} {
		opts := core.DefaultOptions()
		opts.Varius.Phi = phi
		s2, err := core.NewSimulator(opts)
		if err != nil {
			return err
		}
		instrument(s2)
		var fv []float64
		for c := 0; c < chips; c++ {
			f, err := s2.ChipFVar(s2.Chip(seed + int64(c)))
			if err != nil {
				return err
			}
			fv = append(fv, f)
		}
		tb.AddRowF(3, phi, mathx.Mean(fv), mathx.StdDev(fv))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// Systematic-vs-random split.
	tb = report.NewTable("ablation: systematic fraction of Vt variance -> fvar",
		"sys frac", "fvar mean", "fvar sd")
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		opts := core.DefaultOptions()
		opts.Varius.SysFraction = frac
		s2, err := core.NewSimulator(opts)
		if err != nil {
			return err
		}
		instrument(s2)
		var fv []float64
		for c := 0; c < chips; c++ {
			f, err := s2.ChipFVar(s2.Chip(seed + int64(c)))
			if err != nil {
				return err
			}
			fv = append(fv, f)
		}
		tb.AddRowF(3, frac, mathx.Mean(fv), mathx.StdDev(fv))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// Die-to-die component.
	tb = report.NewTable("ablation: die-to-die sigma -> fvar spread",
		"d2d sigma/mu", "fvar mean", "fvar sd")
	for _, d2d := range []float64{0, 0.03, 0.06} {
		opts := core.DefaultOptions()
		opts.Varius.D2DSigmaRatio = d2d
		s2, err := core.NewSimulator(opts)
		if err != nil {
			return err
		}
		instrument(s2)
		var fv []float64
		for c := 0; c < chips; c++ {
			f, err := s2.ChipFVar(s2.Chip(seed + int64(c)))
			if err != nil {
				return err
			}
			fv = append(fv, f)
		}
		tb.AddRowF(3, d2d, mathx.Mean(fv), mathx.StdDev(fv))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// ASV domain granularity.
	app, err := workload.ByName("gcc")
	if err != nil {
		return err
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		return err
	}
	tb = report.NewTable("ablation: ASV domain granularity (fine grain buys power, not ceiling)",
		"domains", "frel", "power(W) at frel")
	var single, multi, pSingle, pMulti []float64
	for c := 0; c < chips; c++ {
		cpu, err := sim.BuildCore(sim.Chip(seed+int64(c)), core.TSASV)
		if err != nil {
			return err
		}
		th := 62.0 + 273.15
		fSingle := sim.SingleDomainFMax(cpu, prof, th)
		single = append(single, fSingle)
		m := 99.0
		for i := 0; i < cpu.N(); i++ {
			q := cpu.QueryFor(i, prof, th, tech.QueueFull, tech.FUNormal)
			if f := cpu.FreqSolve(i, q).FMax; f < m {
				m = f
			}
		}
		multi = append(multi, m)
		// Power at the common achievable frequency: one shared supply
		// (the best single level) vs per-subsystem minimum-power levels.
		fCommon := fSingle
		if m < fCommon {
			fCommon = m
		}
		// The lowest *shared* supply that still meets the common frequency
		// in every subsystem (ascending levels: take the first feasible).
		bestVdd := cpu.Config.VddLevels(1.0)[len(cpu.Config.VddLevels(1.0))-1]
		for _, vdd := range cpu.Config.VddLevels(1.0) {
			feasible := true
			for i := 0; i < cpu.N(); i++ {
				q := cpu.QueryFor(i, prof, th, tech.QueueFull, tech.FUNormal)
				if cpu.FreqSolveAt(i, q, []float64{vdd}, []float64{0}).FMax < fCommon {
					feasible = false
					break
				}
			}
			if feasible {
				bestVdd = vdd
				break
			}
		}
		n := cpu.N()
		opSingle := adapt.OperatingPoint{FCore: fCommon,
			VddV: make([]float64, n), VbbV: make([]float64, n)}
		for i := range opSingle.VddV {
			opSingle.VddV[i] = bestVdd
		}
		stS, err := cpu.Evaluate(opSingle, prof)
		if err != nil {
			return err
		}
		prop, err := cpu.Propose(prof, th, adapt.Exhaustive{})
		if err != nil {
			return err
		}
		opMulti := prop.Point.Clone()
		opMulti.FCore = fCommon
		stM, err := cpu.Evaluate(opMulti, prof)
		if err != nil {
			return err
		}
		pSingle = append(pSingle, stS.TotalW)
		pMulti = append(pMulti, stM.TotalW)
	}
	tb.AddRowF(3, 1, mathx.Mean(single), mathx.Mean(pSingle))
	tb.AddRowF(3, 15, mathx.Mean(multi), mathx.Mean(pMulti))
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// PE budget sweep (§4.1's steepness claim).
	vp := varius.DefaultParams()
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		return err
	}
	fp := sim.Floorplan()
	tb = report.NewTable("ablation: PE budget -> feasible frequency (Dcache, chip seed)",
		"pe budget", "fmax rel")
	sub, err := fp.ByID(floorplan.Dcache)
	if err != nil {
		return err
	}
	// Use vats via the adapt view to avoid re-deriving conditions.
	chip := gen.Chip(seed)
	stage, err := newDcacheStage(*sub, chip, vp)
	if err != nil {
		return err
	}
	for _, pe := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1} {
		tb.AddRowF(4, fmt.Sprintf("%.0e", pe), stage.FMaxForPE(pe))
	}
	return tb.WriteText(os.Stdout)
}

// newDcacheStage builds a frozen Dcache curve at the design corner for the
// PE-budget sweep.
func newDcacheStage(sub floorplan.Subsystem, chip *varius.ChipMaps, vp varius.Params) (*vats.Curve, error) {
	st, err := vats.NewStage(sub, chip, vp)
	if err != nil {
		return nil, err
	}
	return st.Eval(vats.Cond{VddV: vp.VddNomV, TK: vp.TOpRefK}, vats.IdentityVariant()), nil
}
