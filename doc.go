// Package repro is a from-scratch Go reproduction of "EVAL: Utilizing
// Processors with Variation-Induced Timing Errors" (Sarangi, Greskamp,
// Tiwari, Torrellas — MICRO 2008).
//
// The implementation lives under internal/: the VARIUS-style within-die
// variation model (internal/varius, internal/grid), the VATS timing-error
// model (internal/vats), the power/thermal substrate (internal/power,
// internal/thermal), the trace-driven performance model and synthetic SPEC
// 2000 proxy suite (internal/pipeline, internal/workload), the mitigation
// techniques (internal/tech), the Diva-style checker (internal/checker),
// the fuzzy-controller machine learning (internal/fuzzy), the
// high-dimensional dynamic adaptation (internal/adapt), the phase detector
// (internal/phase), and the Table 1 environments with the multi-chip
// experiment harness (internal/core).
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the paper-vs-measured record
// and DESIGN.md for the system inventory.
package repro
