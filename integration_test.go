// Cross-module integration tests: end-to-end invariants that no single
// package can check alone. These run at a deliberately tiny scale; the
// statistically meaningful versions are the benchmarks.
package repro_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/retime"
	"repro/internal/tech"
	"repro/internal/varius"
	"repro/internal/vats"
	"repro/internal/workload"
)

func integrationSim(t *testing.T) *core.Simulator {
	t.Helper()
	opts := core.DefaultOptions()
	opts.TraceLen = 15000
	sim, err := core.NewSimulator(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

// TestEndToEndEnvironmentOrdering checks the paper's central ordering on a
// couple of chips: Baseline < TS < TS+ASV <= techniques, all within
// constraints, and everything below the PLL ceiling.
func TestEndToEndEnvironmentOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end ordering")
	}
	sim := integrationSim(t)
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{11, 23} {
		chip := sim.Chip(seed)
		fvar, err := sim.ChipFVar(chip)
		if err != nil {
			t.Fatal(err)
		}
		fOf := func(env core.Environment) float64 {
			cpu, err := sim.BuildCore(chip, env)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
			if err != nil {
				t.Fatal(err)
			}
			if res.State.Violated() {
				t.Errorf("chip %d %v: final state violates constraints", seed, env)
			}
			return res.Point.FCore
		}
		fTS := fOf(core.TS)
		fASV := fOf(core.TSASV)
		fPref := fOf(core.TSASVQFU)
		if !(fvar < fTS && fTS < fASV) {
			t.Errorf("chip %d: ordering violated: fvar %.3f, TS %.3f, ASV %.3f",
				seed, fvar, fTS, fASV)
		}
		if fPref < fASV-0.026 {
			t.Errorf("chip %d: preferred env %.3f fell below ASV %.3f", seed, fPref, fASV)
		}
	}
}

// TestRetimeBetweenBaselineAndEVAL reproduces the §7 sandwich: baseline <
// retiming < EVAL.
func TestRetimeBetweenBaselineAndEVAL(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison")
	}
	sim := integrationSim(t)
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	chip := sim.Chip(4)
	rr, err := retime.Retime(sim.Floorplan(), chip, sim.Options().Varius, retime.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := sim.BuildCore(chip, core.TSASVQFU)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
	if err != nil {
		t.Fatal(err)
	}
	if !(rr.FBaseline < rr.FRetimed && rr.FRetimed < res.Point.FCore) {
		t.Errorf("ordering violated: baseline %.3f, retimed %.3f, EVAL %.3f",
			rr.FBaseline, rr.FRetimed, res.Point.FCore)
	}
}

// TestExperimentDeterminism: the whole experiment pipeline is a pure
// function of its seeds.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("double experiment run")
	}
	run := func() *core.Summary {
		sim := integrationSim(t)
		cfg := core.DefaultExperimentConfig()
		cfg.Chips = 1
		cfg.Apps = []string{"gcc"}
		cfg.Envs = []core.Environment{core.TSASV}
		cfg.Modes = []core.Mode{core.ExhDyn}
		sum, err := sim.RunSummary(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if a.BaselineFRel != b.BaselineFRel || a.Cells[0] != b.Cells[0] {
		t.Error("experiment pipeline is not deterministic")
	}
}

// TestStagePEWellFormedProperty: across random operating conditions and
// variants, every stage's error probability stays a probability and stays
// monotone in frequency.
func TestStagePEWellFormedProperty(t *testing.T) {
	vp := varius.DefaultParams()
	gen, err := varius.NewGenerator(vp)
	if err != nil {
		t.Fatal(err)
	}
	sim := integrationSim(t)
	chip := gen.Chip(9)
	stages := make([]*vats.Stage, 0, sim.Floorplan().N())
	for _, sub := range sim.Floorplan().Subsystems {
		st, err := vats.NewStage(sub, chip, vp)
		if err != nil {
			t.Fatal(err)
		}
		stages = append(stages, st)
	}
	f := func(subRaw, vddRaw, vbbRaw, tRaw, f1Raw, f2Raw uint8) bool {
		st := stages[int(subRaw)%len(stages)]
		cond := vats.Cond{
			VddV: 0.8 + float64(vddRaw)/255*0.4,
			VbbV: -0.5 + float64(vbbRaw)/255*1.0,
			TK:   318 + float64(tRaw)/255*50,
		}
		cv := st.Eval(cond, vats.IdentityVariant())
		fLo := 0.6 + float64(f1Raw)/255*0.8
		fHi := 0.6 + float64(f2Raw)/255*0.8
		if fLo > fHi {
			fLo, fHi = fHi, fLo
		}
		pLo, pHi := cv.PE(fLo), cv.PE(fHi)
		return pLo >= 0 && pHi <= 1 && pLo <= pHi+1e-15 &&
			!math.IsNaN(pLo) && !math.IsNaN(pHi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFreqSolveWithinActuationProperty: the Freq algorithm always returns a
// frequency on the PLL grid within range, for random queries.
func TestFreqSolveWithinActuationProperty(t *testing.T) {
	sim := integrationSim(t)
	cpu, err := sim.BuildCore(sim.Chip(6), core.TSASV)
	if err != nil {
		t.Fatal(err)
	}
	f := func(subRaw, thRaw, alphaRaw, rhoRaw uint8) bool {
		i := int(subRaw) % cpu.N()
		q := adapt.FreqQuery{
			THK:       320 + float64(thRaw)/255*25,
			AlphaF:    0.01 + float64(alphaRaw)/255,
			Variant:   vats.IdentityVariant(),
			PowerMult: 1,
		}
		q.Rho = q.AlphaF * (0.5 + float64(rhoRaw)/255*4)
		r := cpu.FreqSolve(i, q)
		if r.FMax < tech.FRelMin-1e-9 || r.FMax > tech.FRelMax+1e-9 {
			return false
		}
		steps := (r.FMax - tech.FRelMin) / tech.FRelStep
		return math.Abs(steps-math.Round(steps)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGateDelayLeakageTradeoffProperty: anywhere in the actuation space,
// making a device faster (more drive) makes it leakier — the fundamental
// tension the optimizer navigates.
func TestGateDelayLeakageTradeoffProperty(t *testing.T) {
	vp := varius.DefaultParams()
	f := func(vtRaw, vddRaw, tRaw, dRaw uint8) bool {
		vt := 0.08 + float64(vtRaw)/255*0.2
		vdd := 0.8 + float64(vddRaw)/255*0.4
		tK := 320 + float64(tRaw)/255*40
		dVt := 0.005 + float64(dRaw)/255*0.05
		fasterDelay := vp.RelGateDelay(vt-dVt, 1, vdd, tK)
		slowerDelay := vp.RelGateDelay(vt, 1, vdd, tK)
		fasterLeak := vp.LeakageFactor(vt-dVt, vdd, tK)
		slowerLeak := vp.LeakageFactor(vt, vdd, tK)
		return fasterDelay <= slowerDelay && fasterLeak >= slowerLeak
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSuiteWideProfilesSane builds profiles for the whole 26-app suite and
// checks the Eq. 5 inputs stay physical.
func TestSuiteWideProfilesSane(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite profiling")
	}
	sim := integrationSim(t)
	for _, app := range workload.Suite() {
		for _, ph := range app.Phases {
			p, err := sim.Profile(app, ph)
			if err != nil {
				t.Fatalf("%s/%d: %v", app.Name, ph.Index, err)
			}
			if p.CPICompFull < 1.0/3.0 || p.CPICompFull > 8 {
				t.Errorf("%s/%d: CPIcomp %v out of band", app.Name, ph.Index, p.CPICompFull)
			}
			if p.CPICompSmall < p.CPICompFull {
				t.Errorf("%s/%d: queue shrink lowered CPI", app.Name, ph.Index)
			}
			if p.Mr < 0 || p.Mr > 0.1 {
				t.Errorf("%s/%d: mr %v out of band", app.Name, ph.Index, p.Mr)
			}
			for id, a := range p.Activity {
				if a < 0 || a > 3 {
					t.Errorf("%s/%d: activity[%d] = %v", app.Name, ph.Index, id, a)
				}
			}
		}
	}
}

// TestFleetStatistics: across a small fleet, the mean adapted frequency
// must sit well above the mean baseline with a tight spread (the fleet
// example's claim).
func TestFleetStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run")
	}
	sim := integrationSim(t)
	app, err := workload.ByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := sim.Profile(app, app.Phases[0])
	if err != nil {
		t.Fatal(err)
	}
	var base, adapted []float64
	for seed := int64(0); seed < 5; seed++ {
		chip := sim.Chip(seed)
		fv, err := sim.ChipFVar(chip)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := sim.BuildCore(chip, core.TSASVQFU)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cpu.AdaptSteady(prof, adapt.Exhaustive{})
		if err != nil {
			t.Fatal(err)
		}
		base = append(base, fv)
		adapted = append(adapted, res.Point.FCore)
	}
	gain := mathx.Mean(adapted) / mathx.Mean(base)
	if gain < 1.25 {
		t.Errorf("fleet mean gain %.2f below expectation", gain)
	}
	// Adaptation also *narrows* the fleet's spread: slow chips get boosted
	// hardest (the per-chip personalization story).
	if mathx.StdDev(adapted) > mathx.StdDev(base)*1.5 {
		t.Errorf("adapted spread %.3f should not balloon vs baseline %.3f",
			mathx.StdDev(adapted), mathx.StdDev(base))
	}
}
